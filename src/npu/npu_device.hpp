#pragma once

#include <cstddef>
#include <map>

#include "npu/compiled_model.hpp"
#include "npu/npu_cost_model.hpp"

namespace topil::persist {
struct SnapshotAccess;
}

namespace topil::npu {

class InferenceAggregator;

/// Behavioural NPU device: accepts asynchronous batched inference jobs and
/// makes results available after the latency of the per-layer cost model
/// (npu/npu_cost_model.hpp). Results are computed with fp16-quantized
/// weights (see CompiledModel) by whichever host inference backend is
/// active (npu/inference_backend.hpp) — every backend is bit-identical, so
/// the backend choice never changes results or timing.
class NpuDevice {
 public:
  using JobId = std::size_t;

  /// Legacy-calibrated construction: derives the per-layer cost model via
  /// NpuCostModel::from_legacy.
  explicit NpuDevice(NpuLatencyModel latency = {});
  /// Direct cost-model construction (e.g. with queueing enabled).
  explicit NpuDevice(NpuCostModel cost);

  /// Submit a non-blocking inference job at time `now`.
  JobId submit(const CompiledModel& model, const nn::Matrix& input,
               double now);

  /// True once the job's completion time has passed.
  bool ready(JobId job, double now) const;
  /// Completion time of a submitted job.
  double completion_time(JobId job) const;
  /// Retrieve (and discard) the result; requires ready().
  nn::Matrix take_result(JobId job, double now);

  /// Service latency the device would need for the given job (per-layer
  /// cost model; excludes any queueing delay behind in-flight jobs).
  double latency_s(const CompiledModel& model, std::size_t batch_rows) const;
  /// Shape-free legacy estimate from total MACs per row (fig11 contrast
  /// plots); kept calibrated against the legacy constant-latency model.
  double latency_s(std::size_t batch_rows, double macs_per_row) const;

  const NpuCostModel& cost_model() const { return cost_; }

  std::size_t pending_jobs() const { return jobs_.size(); }

  /// Attach a fleet inference aggregator (nullptr detaches). With an
  /// aggregator, `submit` defers the compute: the job's completion time is
  /// modeled exactly as before, but the result is only materialized when
  /// the aggregator is flushed (once per fleet tick). `take_result` rejects
  /// jobs whose aggregated batch has not been flushed yet.
  void set_aggregator(InferenceAggregator* aggregator) {
    aggregator_ = aggregator;
  }
  InferenceAggregator* aggregator() const { return aggregator_; }

 private:
  // Results are computed eagerly at submit and stored in `jobs_`, so an
  // in-flight batch is plain data — which is what lets a checkpoint land
  // in the middle of a governor epoch (src/persist/snapshot.cpp).
  friend struct topil::persist::SnapshotAccess;

  struct Job {
    double done_at = 0.0;
    nn::Matrix result;
  };

  NpuLatencyModel legacy_;
  NpuCostModel cost_;
  double busy_until_ = 0.0;  ///< queueing horizon (cost_.queueing only)
  JobId next_id_ = 1;
  std::map<JobId, Job> jobs_;
  nn::InferenceWorkspace ws_;  ///< reused across submitted jobs
  InferenceAggregator* aggregator_ = nullptr;
};

}  // namespace topil::npu
