#pragma once

#include <cstddef>
#include <map>

#include "npu/compiled_model.hpp"

namespace topil::npu {

class InferenceAggregator;

/// Latency model of the NPU (and of the CPU fallback path).
///
/// A batched inference costs a fixed driver/DMA overhead plus a per-tile
/// compute term; the device processes `batch_parallelism` rows in parallel,
/// so latency is essentially constant for the batch sizes a governor uses
/// (one row per running application). This reproduces the paper's
/// observation that the NPU-accelerated migration policy has a constant
/// overhead regardless of the number of applications, while CPU inference
/// scales linearly.
struct NpuLatencyModel {
  double fixed_s = 1.2e-3;         ///< driver call + DMA round trip
  double per_tile_s = 8.0e-5;      ///< one parallel wave of rows
  std::size_t batch_parallelism = 16;
  double device_macs_per_s = 1.92e12;  ///< Kirin 970 NPU peak (fp16)

  double latency_s(std::size_t batch_rows, double macs_per_row) const;
};

/// CPU-side single-thread inference cost (mobile core, fp32, used by the
/// overhead benchmark to contrast against the NPU).
struct CpuInferenceModel {
  double fixed_s = 2.0e-5;
  double macs_per_s = 6.0e7;  ///< effective scalar fp32 MAC throughput

  double latency_s(std::size_t batch_rows, double macs_per_row) const;
};

/// Behavioural NPU device: accepts asynchronous batched inference jobs and
/// makes results available after the modeled latency. Results are computed
/// with fp16-quantized weights (see CompiledModel).
class NpuDevice {
 public:
  using JobId = std::size_t;

  explicit NpuDevice(NpuLatencyModel latency = {});

  /// Submit a non-blocking inference job at time `now`.
  JobId submit(const CompiledModel& model, const nn::Matrix& input,
               double now);

  /// True once the job's completion time has passed.
  bool ready(JobId job, double now) const;
  /// Completion time of a submitted job.
  double completion_time(JobId job) const;
  /// Retrieve (and discard) the result; requires ready().
  nn::Matrix take_result(JobId job, double now);

  /// Latency the device would need for the given job.
  double latency_s(std::size_t batch_rows, double macs_per_row) const;

  std::size_t pending_jobs() const { return jobs_.size(); }

  /// Attach a fleet inference aggregator (nullptr detaches). With an
  /// aggregator, `submit` defers the compute: the job's completion time is
  /// modeled exactly as before, but the result is only materialized when
  /// the aggregator is flushed (once per fleet tick). `take_result` rejects
  /// jobs whose aggregated batch has not been flushed yet.
  void set_aggregator(InferenceAggregator* aggregator) {
    aggregator_ = aggregator;
  }
  InferenceAggregator* aggregator() const { return aggregator_; }

 private:
  struct Job {
    double done_at = 0.0;
    nn::Matrix result;
  };

  NpuLatencyModel latency_;
  JobId next_id_ = 1;
  std::map<JobId, Job> jobs_;
  nn::InferenceWorkspace ws_;  ///< reused across submitted jobs
  InferenceAggregator* aggregator_ = nullptr;
};

}  // namespace topil::npu
