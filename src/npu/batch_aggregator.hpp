#pragma once

#include <cstdint>
#include <vector>

#include "npu/compiled_model.hpp"

namespace topil::npu {

/// Cross-simulation inference batcher for the fleet engine.
///
/// When many lockstep simulations tick their TOP-IL governors in the same
/// fleet tick, each governor submits a small per-app inference batch to its
/// NpuDevice. With an aggregator attached, those devices defer the compute:
/// they queue (model, input, result slot) here and the fleet engine calls
/// `flush()` once per tick, after every lane's governor has run. Requests
/// are grouped by CompiledModel::fingerprint() and each group runs as a
/// single `infer_batched_into` over the row-concatenated inputs.
///
/// Determinism contract: inference is row-independent (each output row is a
/// function of its input row only; see nn::Mlp::predict_into), so scattering
/// group results back row-for-row is bit-identical to running each request
/// alone. Device timing (`done_at`) is computed per request from its own row
/// count exactly as in the un-aggregated path, so governor behaviour does
/// not change either — only where the multiply-accumulates happen.
///
/// Not thread-safe: one aggregator serves the lanes of one fleet batch,
/// which a single worker steps.
class InferenceAggregator {
 public:
  /// Queue a deferred request. `out` receives the result at flush() and
  /// must stay valid until then; `input` is copied.
  void enqueue(const CompiledModel& model, const nn::Matrix& input,
               nn::Matrix* out);

  /// Run all queued requests, grouped by model fingerprint (one device
  /// call per distinct compiled model), and scatter results back.
  void flush();

  std::size_t pending() const { return pending_.size(); }

  // --- lifetime statistics (bench / test introspection) ---

  /// Total rows inferred through the aggregator.
  std::uint64_t rows_inferred() const { return rows_inferred_; }
  /// Total device calls issued (batches after grouping).
  std::uint64_t device_calls() const { return device_calls_; }
  /// Total requests enqueued.
  std::uint64_t requests() const { return requests_; }

 private:
  struct Request {
    const CompiledModel* model = nullptr;
    nn::Matrix input;
    nn::Matrix* out = nullptr;
  };

  std::vector<Request> pending_;
  // Scratch reused across flushes.
  nn::Matrix concat_;
  nn::Matrix result_;
  nn::InferenceWorkspace ws_;
  std::vector<std::size_t> group_;  ///< request indices of current group

  std::uint64_t rows_inferred_ = 0;
  std::uint64_t device_calls_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace topil::npu
