#pragma once

#include <cstddef>

#include "nn/mlp.hpp"

namespace topil::npu {

/// Legacy constant-latency model of the NPU (kept as the calibration
/// anchor: `NpuCostModel::from_legacy` derives the per-layer model's
/// defaults from it, and the fig11 overhead benchmark still plots it).
///
/// A batched inference costs a fixed driver/DMA overhead plus a per-wave
/// compute term; the device processes `batch_parallelism` rows in parallel,
/// so latency is essentially constant for the batch sizes a governor uses
/// (one row per running application). This reproduces the paper's
/// observation that the NPU-accelerated migration policy has a constant
/// overhead regardless of the number of applications, while CPU inference
/// scales linearly.
struct NpuLatencyModel {
  double fixed_s = 1.2e-3;         ///< driver call + DMA round trip
  double per_tile_s = 8.0e-5;      ///< one parallel wave of rows
  std::size_t batch_parallelism = 16;
  double device_macs_per_s = 1.92e12;  ///< Kirin 970 NPU peak (fp16)

  double latency_s(std::size_t batch_rows, double macs_per_row) const;
};

/// CPU-side single-thread inference cost (mobile core, fp32, used by the
/// overhead benchmark to contrast against the NPU).
struct CpuInferenceModel {
  double fixed_s = 2.0e-5;
  double macs_per_s = 6.0e7;  ///< effective scalar fp32 MAC throughput

  double latency_s(std::size_t batch_rows, double macs_per_row) const;
};

/// ONNXim-style per-layer NPU cost model (DESIGN.md §12).
///
/// Each dense layer (in -> out) of a batch of `b` rows is tiled onto a
/// `pe_rows x pe_cols` systolic array:
///
///   waves     = ceil(b / pe_rows)         rows per parallel wave
///   col_tiles = ceil(out / pe_cols)       output-channel tiles
///   compute_s = in*out * waves*pe_rows / macs_per_s   (rows rounded up
///               to a full wave: a partial wave costs a full one)
///   weight_s  = 2*in*out / weight_bytes_per_s         (fp16 weights are
///               streamed ONCE per batch — the Fig. 12 amortization)
///   act_s     = 2*b*(in+out) / act_bytes_per_s
///   layer_s   = waves*col_tiles*tile_launch_s
///               + max(compute_s, weight_s) + act_s    (roofline)
///
/// and `latency_s = fixed_s + sum over layers`. Weight traffic is paid per
/// batch, not per row, so latency-per-row falls as the batch grows — the
/// paper's batching claim becomes a model property instead of a constant.
///
/// `queueing` (default OFF) makes the device serialize jobs behind a
/// busy-until horizon, modeling multi-tenant contention when several
/// aggregated batches land on one NPU. It is opt-in because the pinned
/// digests and the fleet-vs-scalar bit-identity contract assume an
/// uncontended device.
struct NpuCostModel {
  double fixed_s = 1.2e-3;        ///< driver call + DMA round trip
  std::size_t pe_rows = 16;       ///< systolic rows (batch wave width)
  std::size_t pe_cols = 64;       ///< systolic cols (output-channel tile)
  double tile_launch_s = 1.6e-5;  ///< per (wave, col-tile) launch cost
  double macs_per_s = 1.92e12;    ///< fp16 MAC throughput
  double weight_bytes_per_s = 12.0e9;  ///< LPDDR4X weight stream
  double act_bytes_per_s = 12.0e9;     ///< activation DMA
  bool queueing = false;          ///< serialize jobs behind busy_until

  /// Defaults calibrated so the paper-scale policy net ({21,64x4,8},
  /// batch 16) lands where the legacy constant model put it (~1.28 ms):
  /// fixed/wave/MAC terms carry over, the per-wave cost is split across
  /// the 5 layers of the calibration net.
  static NpuCostModel from_legacy(const NpuLatencyModel& legacy);

  double layer_latency_s(std::size_t batch_rows, std::size_t in,
                         std::size_t out) const;
  double latency_s(const nn::Topology& topology,
                   std::size_t batch_rows) const;
};

}  // namespace topil::npu
