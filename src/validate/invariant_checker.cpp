#include "validate/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/system_sim.hpp"

namespace topil::validate {

InvariantChecker::InvariantChecker(ValidationConfig config)
    : config_(config) {
  TOPIL_REQUIRE(config.temp_ceiling_c > 0.0, "ceiling must be positive");
  TOPIL_REQUIRE(config.cross_check_interval_ticks > 0,
                "cross-check interval must be positive");
}

void InvariantChecker::violate(Violation v) {
  if (report_.violations.size() < config_.max_recorded_violations) {
    report_.violations.push_back(v);
  }
  if (config_.fail_fast) throw ValidationError(std::move(v));
}

void InvariantChecker::on_attach(const SystemSim& sim) {
  prev_temps_c_ = sim.thermal().node_temps_c();
  prev_time_ = sim.now();
  primed_ = true;
  if (config_.cross_integrator) {
    const ThermalIntegrator other =
        sim.config().integrator == ThermalIntegrator::Heun
            ? ThermalIntegrator::Exponential
            : ThermalIntegrator::Heun;
    shadow_ = std::make_unique<ThermalModel>(
        sim.platform(), sim.thermal().floorplan(), sim.thermal().cooling(),
        other);
    shadow_->set_node_temps_c(prev_temps_c_);
  }
}

void InvariantChecker::on_tick(const SystemSim& sim) {
  const double now = sim.now();
  const std::uint64_t tick = sim.tick_index();
  const double dt = sim.config().tick_s;
  const ThermalModel& thermal = sim.thermal();
  const std::vector<double>& temps = thermal.node_temps_c();
  const double ambient = thermal.cooling().ambient_c;

  check_temperature_bounds(temps, ambient, now, tick);

  if (primed_) {
    check_energy_balance(prev_temps_c_, temps,
                         thermal.node_power(sim.last_power()),
                         thermal.network().capacitances(),
                         thermal.network().ambient_conductances(), ambient,
                         dt, now, tick);
  }

  if (shadow_ != nullptr) {
    shadow_->step(sim.last_power(), dt);
    if (tick % config_.cross_check_interval_ticks == 0) {
      const std::vector<double>& shadow_temps = shadow_->node_temps_c();
      double drift = 0.0;
      std::size_t worst = 0;
      for (std::size_t i = 0; i < temps.size(); ++i) {
        const double d = std::abs(shadow_temps[i] - temps[i]);
        if (d > drift) {
          drift = d;
          worst = i;
        }
      }
      report_.max_cross_integrator_drift_c =
          std::max(report_.max_cross_integrator_drift_c, drift);
      if (drift > config_.cross_integrator_tol_c) {
        violate({"integrator", "cross_integrator_drift", now, tick, drift,
                 config_.cross_integrator_tol_c,
                 "node " + std::to_string(worst) +
                     " diverged between Heun and Exponential"});
      }
    }
  }

  const QosAccounting& qos = sim.config().qos;
  for (Pid pid : sim.running_pids()) {
    const Process& proc = sim.process(pid);
    auto [it, fresh] = proc_state_.try_emplace(pid);
    if (!fresh) {
      check_counter_monotone("instructions", it->second.instructions,
                             proc.instructions_retired(), pid, now, tick);
      check_counter_monotone("l2d_accesses", it->second.l2d,
                             proc.l2d_accesses(), pid, now, tick);
    }
    it->second.instructions = proc.instructions_retired();
    it->second.l2d = proc.l2d_accesses();
    it->second.last_seen_tick = tick;
    check_qos_accounting(proc.qos_below_time_s(), proc.qos_observed_time_s(),
                         proc.arrival_time(), qos.grace_s, dt, pid, now,
                         tick);
  }
  // Drop retired pids so the tracking map stays bounded.
  for (auto it = proc_state_.begin(); it != proc_state_.end();) {
    it = it->second.last_seen_tick == tick ? std::next(it)
                                           : proc_state_.erase(it);
  }

  for (CoreId core = 0; core < sim.platform().num_cores(); ++core) {
    check_utilization(sim.core_utilization(core), core, now, tick);
  }

  digest_.absorb(tick_state_digest(sim));
  report_.trace_digest = digest_.value();
  report_.ticks_checked = digest_.ticks();

  prev_temps_c_ = temps;
  prev_time_ = now;
  primed_ = true;
}

void InvariantChecker::on_migration_epoch(const SystemSim& sim,
                                          double scheduled_time_s,
                                          double period_s) {
  check_epoch_period(scheduled_time_s, period_s, sim.now(),
                     sim.config().tick_s);
}

void InvariantChecker::check_temperature_bounds(
    const std::vector<double>& temps_c, double ambient_c, double time_s,
    std::uint64_t tick) {
  for (std::size_t i = 0; i < temps_c.size(); ++i) {
    const double t = temps_c[i];
    report_.max_temp_c = std::max(report_.max_temp_c, t);
    if (!(t >= ambient_c - config_.ambient_slack_c)) {
      violate({"thermal", "below_ambient", time_s, tick, t, ambient_c,
               "node " + std::to_string(i)});
    }
    if (!(t <= config_.temp_ceiling_c)) {
      violate({"thermal", "above_ceiling", time_s, tick, t,
               config_.temp_ceiling_c, "node " + std::to_string(i)});
    }
  }
}

void InvariantChecker::check_energy_balance(
    const std::vector<double>& prev_temps_c,
    const std::vector<double>& temps_c,
    const std::vector<double>& node_power_w,
    const std::vector<double>& capacitance_j_per_k,
    const std::vector<double>& ambient_g_w_per_k, double ambient_c,
    double dt, double time_s, std::uint64_t tick) {
  // Internal conductance flows are antisymmetric and cancel in the sum, so
  // the first law reduces to: stored-energy change = injected - dissipated
  // to ambient. The outflow integral uses the trapezoid rule, which the
  // per-tick absolute floor covers for sub-tick fast-mode transients.
  double stored = 0.0;
  double inflow = 0.0;
  double outflow = 0.0;
  double stored_abs = 0.0;
  for (std::size_t i = 0; i < temps_c.size(); ++i) {
    const double d_temp = temps_c[i] - prev_temps_c[i];
    stored += capacitance_j_per_k[i] * d_temp;
    stored_abs += std::abs(capacitance_j_per_k[i] * d_temp);
    inflow += node_power_w[i] * dt;
    const double mid = 0.5 * (temps_c[i] + prev_temps_c[i]);
    outflow += ambient_g_w_per_k[i] * (mid - ambient_c) * dt;
  }
  const double residual = stored - (inflow - outflow);
  report_.max_tick_energy_residual_j =
      std::max(report_.max_tick_energy_residual_j, std::abs(residual));
  const double scale = std::abs(inflow) + std::abs(outflow) + stored_abs;
  if (std::abs(residual) >
      config_.energy_tick_rel_tol * scale + config_.energy_tick_abs_tol_j) {
    violate({"energy", "tick_balance", time_s, tick, residual, 0.0,
             "C*dT=" + std::to_string(stored) + " J, net flow=" +
                 std::to_string(inflow - outflow) + " J"});
  }

  report_.total_energy_residual_j += residual;
  report_.total_energy_in_j += inflow;
  if (std::abs(report_.total_energy_residual_j) >
      config_.energy_total_rel_tol * report_.total_energy_in_j +
          config_.energy_total_abs_tol_j) {
    violate({"energy", "cumulative_balance", time_s, tick,
             report_.total_energy_residual_j, 0.0,
             "of " + std::to_string(report_.total_energy_in_j) +
                 " J injected"});
  }
}

void InvariantChecker::check_counter_monotone(const char* counter,
                                              double previous, double current,
                                              std::uint64_t pid,
                                              double time_s,
                                              std::uint64_t tick) {
  if (current < previous - config_.counter_slack) {
    violate({"accounting", std::string(counter) + "_decreased", time_s, tick,
             current, previous, "pid " + std::to_string(pid)});
  }
  if (!std::isfinite(current)) {
    violate({"accounting", std::string(counter) + "_not_finite", time_s,
             tick, current, previous, "pid " + std::to_string(pid)});
  }
}

void InvariantChecker::check_qos_accounting(double below_s, double observed_s,
                                            double arrival_s, double grace_s,
                                            double tick_s, std::uint64_t pid,
                                            double time_s,
                                            std::uint64_t tick) {
  if (below_s > observed_s + config_.time_slack_s) {
    violate({"qos", "below_exceeds_observed", time_s, tick, below_s,
             observed_s, "pid " + std::to_string(pid)});
  }
  const double post_grace =
      std::max(0.0, time_s - arrival_s - grace_s) + tick_s;
  if (observed_s > post_grace + config_.time_slack_s) {
    violate({"qos", "observed_exceeds_lifetime", time_s, tick, observed_s,
             post_grace, "pid " + std::to_string(pid)});
  }
  if (below_s < 0.0 || observed_s < 0.0) {
    violate({"qos", "negative_time", time_s, tick, std::min(below_s,
             observed_s), 0.0, "pid " + std::to_string(pid)});
  }
}

void InvariantChecker::check_utilization(double utilization,
                                         std::uint64_t core, double time_s,
                                         std::uint64_t tick) {
  if (utilization < -config_.utilization_slack ||
      utilization > 1.0 + config_.utilization_slack) {
    violate({"utilization", "out_of_range", time_s, tick, utilization, 1.0,
             "core " + std::to_string(core)});
  }
}

void InvariantChecker::check_epoch_period(double scheduled_time_s,
                                          double period_s, double now_s,
                                          double tick_s) {
  if (have_epoch_) {
    const double spacing = scheduled_time_s - last_epoch_deadline_s_;
    if (std::abs(spacing - period_s) > config_.time_slack_s) {
      violate({"epoch", "period_drift", now_s, report_.ticks_checked,
               spacing, period_s, "migration epochs must stay on the grid"});
    }
  }
  if (now_s < scheduled_time_s - config_.time_slack_s ||
      now_s > scheduled_time_s + tick_s + config_.time_slack_s) {
    violate({"epoch", "deadline_missed", now_s, report_.ticks_checked,
             now_s, scheduled_time_s,
             "deadline must be honored within one tick"});
  }
  have_epoch_ = true;
  last_epoch_deadline_s_ = scheduled_time_s;
  ++report_.epochs_checked;
}

}  // namespace topil::validate
