#pragma once

#include "sim/sim_monitor.hpp"
#include "validate/state_digest.hpp"

namespace topil::validate {

/// Minimal monitor that only accumulates the run's trace digest — no
/// invariant checks, no shadow thermal model. Absorbing the same per-tick
/// state digest as InvariantChecker, it produces bit-identical digests for
/// identical runs at a fraction of the cost, which is what the fuzzing
/// campaign's rerun-determinism oracle needs: the reference run pays for
/// the full checker once, every re-execution only pays for hashing.
class DigestMonitor : public SimMonitor {
 public:
  void on_tick(const SystemSim& sim) override {
    digest_.absorb(tick_state_digest(sim));
  }

  std::uint64_t digest() const { return digest_.value(); }
  std::uint64_t ticks() const { return digest_.ticks(); }

  /// Checkpoint restore: continue a digest chain captured mid-run.
  void resume_from(std::uint64_t hash_state, std::uint64_t ticks) {
    digest_ = TraceDigest::resume(hash_state, ticks);
  }

 private:
  TraceDigest digest_;
};

}  // namespace topil::validate
