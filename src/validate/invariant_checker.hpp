#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/sim_monitor.hpp"
#include "thermal/thermal_model.hpp"
#include "validate/state_digest.hpp"
#include "validate/validation.hpp"

namespace topil::validate {

/// Runtime invariant checker: attach to a SystemSim (SimConfig::validate)
/// and every tick is verified against the simulator's physical and
/// accounting invariants while an FNV digest of the state trajectory is
/// accumulated for determinism gating.
///
/// Checks per tick:
///  - thermal sanity: every node temperature within [ambient, ceiling]
///  - RC-network energy balance: sum C_i dT_i against net heat flow,
///    per tick (loose) and cumulatively (tight)
///  - cross-integrator drift: a shadow ThermalModel running the *other*
///    integrator under identical powers stays within tolerance
///  - accounting: instructions/L2D monotone non-decreasing per process,
///    QoS below_time <= observed_time <= post-grace lifetime,
///    core utilization in [0, 1]
/// Plus, event-driven via SystemSim::note_migration_epoch:
///  - migration-epoch deadlines exactly one period apart, honored within
///    one tick
///
/// The check primitives are public and operate on plain data, so the
/// fault-injection tests can drive them without a full simulation.
class InvariantChecker : public SimMonitor {
 public:
  explicit InvariantChecker(ValidationConfig config = {});

  // --- SimMonitor ---
  void on_attach(const SystemSim& sim) override;
  void on_tick(const SystemSim& sim) override;
  void on_migration_epoch(const SystemSim& sim, double scheduled_time_s,
                          double period_s) override;

  const ValidationConfig& config() const { return config_; }
  const ValidationReport& report() const { return report_; }

  // --- check primitives (public for targeted tests) ---

  /// All temperatures within [ambient - slack, ceiling].
  void check_temperature_bounds(const std::vector<double>& temps_c,
                                double ambient_c, double time_s,
                                std::uint64_t tick);

  /// First law over one tick: sum_i C_i (T_i' - T_i) must match
  /// dt * (P_in - P_ambient_out) with the ambient outflow estimated by the
  /// trapezoid rule; also accumulates the run-level balance.
  void check_energy_balance(const std::vector<double>& prev_temps_c,
                            const std::vector<double>& temps_c,
                            const std::vector<double>& node_power_w,
                            const std::vector<double>& capacitance_j_per_k,
                            const std::vector<double>& ambient_g_w_per_k,
                            double ambient_c, double dt, double time_s,
                            std::uint64_t tick);

  /// Cumulative counters never decrease.
  void check_counter_monotone(const char* counter, double previous,
                              double current, std::uint64_t pid,
                              double time_s, std::uint64_t tick);

  /// below <= observed <= max(0, now - arrival - grace) + one tick.
  void check_qos_accounting(double below_s, double observed_s,
                            double arrival_s, double grace_s, double tick_s,
                            std::uint64_t pid, double time_s,
                            std::uint64_t tick);

  /// Utilization within [0, 1].
  void check_utilization(double utilization, std::uint64_t core,
                         double time_s, std::uint64_t tick);

  /// Consecutive epoch deadlines exactly one period apart.
  void check_epoch_period(double scheduled_time_s, double period_s,
                          double now_s, double tick_s);

 private:
  ValidationConfig config_;
  ValidationReport report_;
  TraceDigest digest_;

  // Tick-to-tick state.
  bool primed_ = false;
  double prev_time_ = 0.0;
  std::vector<double> prev_temps_c_;
  struct ProcState {
    double instructions = 0.0;
    double l2d = 0.0;
    std::uint64_t last_seen_tick = 0;
  };
  std::map<std::uint64_t, ProcState> proc_state_;

  // Shadow model for the cross-integrator check (lazily constructed from
  // the attached sim's floorplan/cooling; owns nothing of the sim).
  std::unique_ptr<ThermalModel> shadow_;
  std::vector<double> shadow_power_buf_;

  // Epoch cadence.
  bool have_epoch_ = false;
  double last_epoch_deadline_s_ = 0.0;

  void violate(Violation v);
};

}  // namespace topil::validate
