#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace topil::validate {

/// Tolerances and switches of the runtime invariant checker.
///
/// Defaults are tuned so a correct simulator passes the full mixed-workload
/// evaluation scenarios with a wide margin (see DESIGN.md §8), while the
/// seeded-fault tests in tests/validate still trip every check.
struct ValidationConfig {
  // --- thermal sanity ---
  /// Hard upper bound on any node temperature. The HiKey970 DTM throttles
  /// near 85 degC; anything above this ceiling is an integration blow-up
  /// or a power-accounting bug, not physics.
  double temp_ceiling_c = 125.0;
  /// Slack below ambient (the RC network is dissipative: with non-negative
  /// power no node can cool below ambient beyond FP noise).
  double ambient_slack_c = 1e-6;

  // --- RC-network energy balance ---
  /// Per-tick tolerance, relative to the energy moved this tick.
  double energy_tick_rel_tol = 0.05;
  /// Per-tick absolute floor in joules (sub-tick transients of the fast
  /// thermal modes are not captured by the trapezoid flow estimate).
  double energy_tick_abs_tol_j = 0.05;
  /// Cumulative drift tolerance, relative to total energy injected.
  double energy_total_rel_tol = 0.02;
  double energy_total_abs_tol_j = 1.0;

  // --- cross-integrator drift ---
  /// Step a shadow thermal model with the *other* integrator under the
  /// same per-tick powers and compare node temperatures.
  bool cross_integrator = true;
  /// Compare every this-many ticks (the shadow still steps every tick).
  std::uint64_t cross_check_interval_ticks = 25;
  double cross_integrator_tol_c = 0.25;

  // --- accounting ---
  /// Slack for monotone cumulative counters (instructions, L2D).
  double counter_slack = 1e-6;
  /// Slack for time bookkeeping (QoS below/observed time, epoch grid).
  double time_slack_s = 1e-9;
  double utilization_slack = 1e-9;

  /// Throw ValidationError at the first violation (otherwise violations
  /// are only recorded in the report, up to max_recorded_violations).
  bool fail_fast = true;
  std::size_t max_recorded_violations = 64;
};

/// One violated invariant, with enough structure to act on programmatically.
struct Violation {
  std::string component;  ///< "thermal" | "energy" | "accounting" | "qos" |
                          ///< "epoch" | "utilization" | "integrator"
  std::string invariant;  ///< short machine-readable name
  double time_s = 0.0;
  std::uint64_t tick = 0;
  double observed = 0.0;
  double expected = 0.0;
  std::string detail;  ///< human-readable context (node/pid/cluster, ...)

  std::string to_string() const;
};

/// Structured failure raised by the invariant checker (fail-fast mode).
class ValidationError : public Error {
 public:
  explicit ValidationError(Violation violation);
  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

/// Aggregated outcome of a validated run: worst drifts observed for each
/// tolerance-based check plus every recorded violation.
struct ValidationReport {
  std::uint64_t ticks_checked = 0;
  std::size_t epochs_checked = 0;

  /// Order-independent FNV-1a digest over the full state trajectory
  /// (see state_digest.hpp); equal digests mean equal runs.
  std::uint64_t trace_digest = 0;

  double max_temp_c = 0.0;
  double max_tick_energy_residual_j = 0.0;
  double total_energy_residual_j = 0.0;
  double total_energy_in_j = 0.0;
  double max_cross_integrator_drift_c = 0.0;

  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
  /// Multi-line human-readable summary (printed by --validate runs).
  std::string summary() const;
};

}  // namespace topil::validate
