#include "validate/validation.hpp"

#include <cstdio>

#include "validate/state_digest.hpp"

namespace topil::validate {

std::string Violation::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[%s/%s] t=%.6f s (tick %llu): observed %.9g, expected %.9g",
                component.c_str(), invariant.c_str(), time_s,
                static_cast<unsigned long long>(tick), observed, expected);
  std::string out(buf);
  if (!detail.empty()) out += " — " + detail;
  return out;
}

ValidationError::ValidationError(Violation violation)
    : Error("validation failed: " + violation.to_string()),
      violation_(std::move(violation)) {}

std::string ValidationReport::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "validation: %s — %llu ticks, %zu epochs, digest %s\n"
      "  max temp %.2f degC; energy residual tick %.4g J, "
      "total %.4g J of %.4g J in; cross-integrator drift %.4g degC\n"
      "  violations: %zu",
      clean() ? "clean" : "FAILED",
      static_cast<unsigned long long>(ticks_checked), epochs_checked,
      digest_hex(trace_digest).c_str(), max_temp_c,
      max_tick_energy_residual_j, total_energy_residual_j, total_energy_in_j,
      max_cross_integrator_drift_c, violations.size());
  std::string out(buf);
  for (const Violation& v : violations) out += "\n  " + v.to_string();
  return out;
}

}  // namespace topil::validate
