#include "validate/state_digest.hpp"

#include <cstdio>

#include "sim/system_sim.hpp"

namespace topil::validate {

namespace {

// Domain tags keep equal values in different roles from colliding.
enum class Tag : std::uint64_t {
  kNodeTemp = 0x01,
  kVfLevel = 0x02,
  kProcess = 0x03,
  kCompleted = 0x04,
  kGlobal = 0x05,
};

template <typename Fill>
std::uint64_t keyed(Tag tag, std::uint64_t key, Fill&& fill) {
  Fnv64 h;
  h.u64(static_cast<std::uint64_t>(tag));
  h.u64(key);
  fill(h);
  return h.value();
}

}  // namespace

std::uint64_t tick_state_digest(const SystemSim& sim) {
  // Wrapping addition makes the combine commutative: the digest is a
  // function of the state set, not of container iteration order.
  std::uint64_t combined = 0;

  const std::vector<double>& temps = sim.thermal().node_temps_c();
  for (std::size_t i = 0; i < temps.size(); ++i) {
    combined += keyed(Tag::kNodeTemp, i,
                      [&](Fnv64& h) { h.f64(temps[i]); });
  }

  const PlatformSpec& platform = sim.platform();
  for (ClusterId c = 0; c < platform.num_clusters(); ++c) {
    combined += keyed(Tag::kVfLevel, c, [&](Fnv64& h) {
      h.u64(sim.requested_vf_level(c));
      h.u64(sim.vf_level(c));
    });
  }

  for (Pid pid : sim.running_pids()) {
    const Process& proc = sim.process(pid);
    combined += keyed(Tag::kProcess, pid, [&](Fnv64& h) {
      h.u64(proc.core());
      h.u64(proc.current_phase_index());
      h.f64(proc.instructions_retired());
      h.f64(proc.l2d_accesses());
      h.f64(proc.qos_below_time_s());
      h.f64(proc.qos_observed_time_s());
      h.u64(proc.finished() ? 1 : 0);
    });
  }

  const auto& completed = sim.metrics().completed();
  for (std::size_t i = 0; i < completed.size(); ++i) {
    const CompletedProcess& rec = completed[i];
    combined += keyed(Tag::kCompleted, rec.pid, [&](Fnv64& h) {
      h.f64(rec.arrival_time);
      h.f64(rec.finish_time);
      h.f64(rec.average_ips);
      h.f64(rec.below_target_fraction);
      h.u64(rec.qos_violated ? 1 : 0);
    });
  }

  combined += keyed(Tag::kGlobal, 0, [&](Fnv64& h) {
    h.f64(sim.now());
    h.f64(sim.sensor_temp_c());
    h.u64(sim.num_running());
  });

  // One final FNV round mixes the commutative sum.
  Fnv64 out;
  out.u64(combined);
  return out.value();
}

std::string digest_hex(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

}  // namespace topil::validate
