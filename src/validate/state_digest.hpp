#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace topil {
class SystemSim;
}

namespace topil::validate {

/// Incremental FNV-1a 64-bit hash over typed fields.
class Fnv64 {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Fnv64() = default;
  /// Resume from a previously captured `value()` (checkpoint restore).
  static Fnv64 resume(std::uint64_t state) {
    Fnv64 f;
    f.h_ = state;
    return f;
  }

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h_ ^= static_cast<std::uint64_t>(p[i]);
      h_ *= kPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  /// Exact bit pattern — distinguishes -0.0 from 0.0 and every NaN
  /// payload, which is precisely what a determinism gate wants.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffset;
};

/// Digest of one simulator tick: temperatures, VF levels (requested and
/// effective), per-process progress counters, completed-process records,
/// and the sensor reading.
///
/// Per-entity sub-hashes (keyed by node index / pid / cluster id) are
/// combined with wrapping addition, so the digest does not depend on the
/// iteration order of any container — only on the set of (key, state)
/// pairs. Two runs produce equal tick digests iff their observable state
/// is bit-identical.
std::uint64_t tick_state_digest(const SystemSim& sim);

/// Chains per-tick digests into one run digest (tick order matters).
class TraceDigest {
 public:
  TraceDigest() = default;
  /// Resume a chained digest from checkpointed (value, ticks) state: the
  /// accumulator is just (running hash, tick count), so a restored chain
  /// continues bit-identically to the uninterrupted one.
  static TraceDigest resume(std::uint64_t hash_state, std::uint64_t ticks) {
    TraceDigest d;
    d.hash_ = Fnv64::resume(hash_state);
    d.ticks_ = ticks;
    return d;
  }

  void absorb(std::uint64_t tick_digest) {
    hash_.u64(ticks_);
    hash_.u64(tick_digest);
    ++ticks_;
  }
  std::uint64_t value() const { return hash_.value(); }
  std::uint64_t ticks() const { return ticks_; }

 private:
  Fnv64 hash_;
  std::uint64_t ticks_ = 0;
};

/// Canonical 16-char lowercase hex rendering used in digest files.
std::string digest_hex(std::uint64_t digest);

}  // namespace topil::validate
