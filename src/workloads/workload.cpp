#include "workloads/workload.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace topil {

namespace {

void require_valid(const WorkloadItem& item) {
  TOPIL_REQUIRE(item.qos_target_ips > 0.0, "QoS target must be positive");
  TOPIL_REQUIRE(item.arrival_time >= 0.0, "arrival time must be >= 0");
  TOPIL_REQUIRE(item.app != nullptr ||
                    AppDatabase::instance().contains(item.app_name),
                "unknown application: " + item.app_name);
}

}  // namespace

Workload::Workload(std::vector<WorkloadItem> items)
    : items_(std::move(items)) {
  for (const auto& item : items_) require_valid(item);
  sort_items();
}

void Workload::add(WorkloadItem item) {
  require_valid(item);
  items_.push_back(std::move(item));
  sort_items();
}

void Workload::sort_items() {
  std::stable_sort(items_.begin(), items_.end(),
                   [](const WorkloadItem& a, const WorkloadItem& b) {
                     return a.arrival_time < b.arrival_time;
                   });
}

double Workload::last_arrival_time() const {
  TOPIL_REQUIRE(!items_.empty(), "empty workload");
  return items_.back().arrival_time;
}

const AppSpec& Workload::app_of(const WorkloadItem& item) {
  if (item.app != nullptr) return *item.app;
  return AppDatabase::instance().by_name(item.app_name);
}

}  // namespace topil
