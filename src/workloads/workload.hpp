#pragma once

#include <string>
#include <vector>

#include "apps/app_database.hpp"

namespace topil {

/// One scheduled application instance of a workload.
struct WorkloadItem {
  std::string app_name;
  double qos_target_ips = 0.0;
  double arrival_time = 0.0;
  /// Optional out-of-database application (scenario fuzzing runs adapted
  /// copies — rescaled instruction budgets, synthesized cluster entries).
  /// When set, `app_name` is informational only and `app_of` returns this
  /// spec; the pointee must outlive the workload (the scenario
  /// materialization that created it owns both).
  const AppSpec* app = nullptr;
};

/// An open-system workload: applications with QoS targets arriving over
/// time. Items are kept sorted by arrival time.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<WorkloadItem> items);

  void add(WorkloadItem item);

  const std::vector<WorkloadItem>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  double last_arrival_time() const;

  /// Resolve an item's AppSpec from the database.
  static const AppSpec& app_of(const WorkloadItem& item);

 private:
  std::vector<WorkloadItem> items_;
  void sort_items();
};

}  // namespace topil
