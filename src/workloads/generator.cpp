#include "workloads/generator.hpp"

namespace topil {

std::vector<double> sample_arrivals(std::size_t n, ArrivalPattern pattern,
                                    double rate_per_s, Rng& rng) {
  TOPIL_REQUIRE(pattern == ArrivalPattern::Burst || rate_per_s > 0.0,
                "arrival rate must be positive");
  std::vector<double> arrivals;
  arrivals.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrivals.push_back(t);
    switch (pattern) {
      case ArrivalPattern::Poisson:
        t += rng.exponential(rate_per_s);
        break;
      case ArrivalPattern::Burst:
        break;  // t stays 0
      case ArrivalPattern::Staggered:
        t += 1.0 / rate_per_s;
        break;
    }
  }
  return arrivals;
}

WorkloadGenerator::WorkloadGenerator(const PlatformSpec& platform)
    : platform_(&platform) {}

Workload WorkloadGenerator::mixed(
    const MixedConfig& config,
    const std::vector<const AppSpec*>& pool) const {
  TOPIL_REQUIRE(!pool.empty(), "empty application pool");
  TOPIL_REQUIRE(config.num_apps > 0, "workload needs at least one app");
  TOPIL_REQUIRE(config.arrival_rate_per_s > 0.0,
                "arrival rate must be positive");
  TOPIL_REQUIRE(config.qos_fraction_min > 0.0 &&
                    config.qos_fraction_max <= 1.0 &&
                    config.qos_fraction_min <= config.qos_fraction_max,
                "invalid QoS fraction range");
  Rng rng(config.seed);

  Workload workload;
  double t = 0.0;
  for (std::size_t i = 0; i < config.num_apps; ++i) {
    const AppSpec* app = pool[rng.index(pool.size())];
    const double fraction =
        rng.uniform(config.qos_fraction_min, config.qos_fraction_max);
    WorkloadItem item;
    item.app_name = app->name;
    // Carry the pool's spec, not just its name: pools of adapted apps
    // (per-tier perf rows on non-big.LITTLE topologies) must not fall back
    // to the database entry of the same name at spawn time.
    item.app = app;
    item.qos_target_ips = fraction * app->peak_ips(*platform_);
    item.arrival_time = t;
    workload.add(std::move(item));
    t += rng.exponential(config.arrival_rate_per_s);
  }
  return workload;
}

Workload WorkloadGenerator::single(const AppSpec& app,
                                   double fraction_of_min_peak) const {
  TOPIL_REQUIRE(fraction_of_min_peak > 0.0 && fraction_of_min_peak <= 1.0,
                "fraction out of range");
  // Normalize against the lowest-perf tier (the LITTLE cluster on classic
  // big.LITTLE parts) so the target stays attainable on every tier of any
  // topology.
  const ClusterId slowest = platform_->min_perf_cluster();
  const double min_peak =
      app.average_ips(slowest, platform_->cluster(slowest).vf.max_freq());
  WorkloadItem item;
  item.app_name = app.name;
  item.app = &app;
  item.qos_target_ips = fraction_of_min_peak * min_peak;
  item.arrival_time = 0.0;
  Workload workload;
  workload.add(std::move(item));
  return workload;
}

}  // namespace topil
