#pragma once

#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "workloads/workload.hpp"

namespace topil {

/// Shape of the arrival process of an open-system workload.
enum class ArrivalPattern {
  Poisson,    ///< exponential inter-arrival gaps (the paper's evaluation)
  Burst,      ///< everything arrives at t = 0 (worst-case contention)
  Staggered,  ///< evenly spaced at the mean Poisson gap (gentlest ramp)
};

/// Arrival times for `n` applications under the given pattern, sorted
/// ascending and starting at 0. `rate_per_s` is the mean arrival rate;
/// Burst ignores it. Draws come from the caller's rng (Poisson only), so
/// the sequence is reproducible from the generator state alone.
std::vector<double> sample_arrivals(std::size_t n, ArrivalPattern pattern,
                                    double rate_per_s, Rng& rng);

/// Generates the workloads of the paper's evaluation.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const PlatformSpec& platform);

  struct MixedConfig {
    std::size_t num_apps = 20;
    /// Poisson arrival rate (applications per second). The paper varies
    /// this to sweep system load.
    double arrival_rate_per_s = 0.05;
    /// QoS targets drawn uniformly as a fraction of each application's
    /// platform-peak IPS.
    double qos_fraction_min = 0.25;
    double qos_fraction_max = 0.75;
    std::uint64_t seed = 1;
  };

  /// Mixed workload of randomly selected applications from `pool` with
  /// random QoS targets and Poisson arrivals (paper Sec. 7.2). Items carry
  /// the pool's spec pointers (not just names), so pools of apps adapted
  /// to non-big.LITTLE topologies run as-is; the pointees must outlive the
  /// workload.
  Workload mixed(const MixedConfig& config,
                 const std::vector<const AppSpec*>& pool) const;

  /// Single-application workload whose QoS target is attainable at the
  /// peak VF level of the lowest-perf tier — the LITTLE cluster on the
  /// paper's platform (Sec. 7.3) — so it stays feasible on every tier of
  /// arbitrary topologies. The item points at `app`, which must outlive
  /// the workload.
  Workload single(const AppSpec& app,
                  double fraction_of_min_peak = 0.85) const;

 private:
  const PlatformSpec* platform_;
};

}  // namespace topil
