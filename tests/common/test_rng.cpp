#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace topil {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) ++differing;
  }
  EXPECT_GT(differing, 25);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMatchesMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, IndexUniformOverRange) {
  Rng rng(8);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) counts[rng.index(5)]++;
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(10);
  Rng child = a.fork();
  // The fork must not replay the parent stream.
  Rng b(10);
  b.fork();
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (child.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(rng.uniform_int(5, 4), InvalidArgument);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

}  // namespace
}  // namespace topil
