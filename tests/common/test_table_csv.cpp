#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace topil {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Every rendered line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, NumericFormatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_pm(1.5, 0.25, 2), "1.50 +- 0.25");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFileWithHeaderAndRows) {
  const std::string path = testing::TempDir() + "/topil_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row(std::vector<std::string>{"1", "x,y"});
    csv.add_row(std::vector<double>{2.5, 3.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3");
  std::remove(path.c_str());
}

TEST(Csv, DoubleFormattingRoundTrips) {
  // Shortest-representation formatting must recover the exact bit pattern
  // through strtod — 6-significant-digit formatting (the old behavior)
  // fails this for most doubles.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           2.362e9,
                           1e-7,
                           123456.789012345,
                           -9.87654321e-12,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    const std::string cell = csv_format_double(v);
    char* end = nullptr;
    const double parsed = std::strtod(cell.c_str(), &end);
    EXPECT_EQ(end, cell.c_str() + cell.size()) << cell;
    std::uint64_t vb = 0;
    std::uint64_t pb = 0;
    std::memcpy(&vb, &v, sizeof(vb));
    std::memcpy(&pb, &parsed, sizeof(pb));
    EXPECT_EQ(vb, pb) << cell << " did not round-trip";
  }
}

TEST(Csv, DoubleFormattingIgnoresGlobalLocale) {
  // A comma-decimal global locale must not corrupt the CSV: a cell of
  // "2,5" would parse as two columns. std::locale::global is process-wide
  // state, so restore it even on failure.
  struct CommaDecimal : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  struct LocaleGuard {
    std::locale previous = std::locale();
    ~LocaleGuard() { std::locale::global(previous); }
  } guard;
  std::locale::global(std::locale(std::locale(), new CommaDecimal));
  EXPECT_EQ(csv_format_double(2.5), "2.5");
  EXPECT_EQ(csv_format_double(1234.5), "1234.5");

  const std::string path = testing::TempDir() + "/topil_locale.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row(std::vector<double>{2.5, 1e-7});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,1e-07");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongWidth) {
  const std::string path = testing::TempDir() + "/topil_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1"}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, CloseSucceedsOnHealthyStream) {
  const std::string path = testing::TempDir() + "/topil_close.csv";
  CsvWriter csv(path, {"a"});
  csv.add_row(std::vector<std::string>{"1"});
  csv.close();
  std::remove(path.c_str());
}

TEST(Csv, CloseReportsFullDisk) {
  // /dev/full accepts the open and buffers writes, then fails the flush
  // with ENOSPC — exactly the failure the silent destructor path would
  // swallow. close() must surface it, naming the file.
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP();
  CsvWriter csv("/dev/full", {"a", "b"});
  for (int i = 0; i < 4096; ++i) {
    csv.add_row(std::vector<double>{1.0 * i, 2.0 * i});
  }
  try {
    csv.close();
    FAIL() << "close() on /dev/full did not throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos);
  }
}

}  // namespace
}  // namespace topil
