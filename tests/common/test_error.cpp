#include "common/error.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

TEST(Error, RequireThrowsInvalidArgumentWithContext) {
  try {
    TOPIL_REQUIRE(1 == 2, "custom message");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrueCondition) {
  EXPECT_NO_THROW(TOPIL_REQUIRE(true, "never"));
}

TEST(Error, AssertThrowsLogicError) {
  EXPECT_THROW(TOPIL_ASSERT(false, "bug"), LogicError);
  EXPECT_NO_THROW(TOPIL_ASSERT(true, "fine"));
}

TEST(Error, HierarchyRootsAtError) {
  // Both error kinds are catchable as topil::Error and std::exception.
  EXPECT_THROW(TOPIL_REQUIRE(false, "x"), Error);
  EXPECT_THROW(TOPIL_ASSERT(false, "x"), std::exception);
}

}  // namespace
}  // namespace topil
