#include "common/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil {
namespace {

TEST(RunningStats, EmptyBehaviour) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.min(), InvalidArgument);
  EXPECT_THROW(s.max(), InvalidArgument);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedAverage, PiecewiseConstantSignal) {
  TimeWeightedAverage avg;
  avg.sample(0.0, 10.0);  // 10 from t=0..1
  avg.sample(1.0, 20.0);  // 20 from t=1..3
  avg.sample(3.0, 0.0);
  EXPECT_DOUBLE_EQ(avg.average(), (10.0 * 1.0 + 20.0 * 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(avg.duration(), 3.0);
}

TEST(TimeWeightedAverage, SingleSampleReturnsValue) {
  TimeWeightedAverage avg;
  avg.sample(2.0, 42.0);
  EXPECT_DOUBLE_EQ(avg.average(), 42.0);
}

TEST(TimeWeightedAverage, RejectsTimeTravel) {
  TimeWeightedAverage avg;
  avg.sample(1.0, 1.0);
  EXPECT_THROW(avg.sample(0.5, 2.0), InvalidArgument);
}

TEST(VectorStats, MeanAndStddev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_THROW(mean({}), InvalidArgument);
  EXPECT_DOUBLE_EQ(stddev({7.0}), 0.0);
}

TEST(VectorStats, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 25.0), 2.0);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(WelchTest, SeparatedGroupsGiveSmallP) {
  RunningStats a;
  RunningStats b;
  for (double x : {10.0, 10.2, 9.9, 10.1, 9.8}) a.add(x);
  for (double x : {12.0, 12.3, 11.8, 12.1, 12.2}) b.add(x);
  const WelchResult r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_LT(r.t, 0.0);  // a < b
  EXPECT_GT(r.degrees_of_freedom, 3.0);
}

TEST(WelchTest, OverlappingGroupsGiveLargeP) {
  RunningStats a;
  RunningStats b;
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    a.add(rng.gaussian(5.0, 1.0));
    b.add(rng.gaussian(5.0, 1.0));
  }
  EXPECT_GT(welch_t_test(a, b).p_value, 0.05);
}

TEST(WelchTest, KnownTextbookValue) {
  // Classic Welch example: unequal variances and sizes.
  RunningStats a;
  RunningStats b;
  for (double x : {27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9,
                   22.6, 23.1, 19.6, 19.0, 21.7, 21.4}) {
    a.add(x);
  }
  for (double x : {27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8,
                   20.2, 21.9, 22.1, 22.9, 30.0, 23.9}) {
    b.add(x);
  }
  // Reference values computed independently (scipy.stats):
  // t = -2.83526, df = 27.7136, p = 0.0084527.
  const WelchResult r = welch_t_test(a, b);
  EXPECT_NEAR(r.t, -2.83526, 1e-4);
  EXPECT_NEAR(r.degrees_of_freedom, 27.7136, 1e-3);
  EXPECT_NEAR(r.p_value, 0.0084527, 1e-5);
}

TEST(WelchTest, DegenerateConstantGroups) {
  RunningStats a;
  RunningStats b;
  a.add(1.0);
  a.add(1.0);
  b.add(1.0);
  b.add(1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 1.0);
  RunningStats c;
  c.add(2.0);
  c.add(2.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, c).p_value, 0.0);
}

TEST(WelchTest, RequiresTwoSamplesPerGroup) {
  RunningStats a;
  RunningStats b;
  a.add(1.0);
  b.add(1.0);
  b.add(2.0);
  EXPECT_THROW(welch_t_test(a, b), InvalidArgument);
}

}  // namespace
}  // namespace topil
