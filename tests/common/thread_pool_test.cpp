#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/rng.hpp"

namespace topil {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);

  // The pool stays usable after an idle wait.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&count, i] {
      count.fetch_add(1);
      if (i % 2 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(count.load(), 8) << "remaining tasks must still run";

  // The error is cleared once rethrown; later batches start clean.
  pool.submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, NestedSubmitRunsInlineInsteadOfDeadlocking) {
  // Queue capacity 1 and a single worker: if a task's own submissions were
  // enqueued, the worker would block on its full queue forever. The guard
  // runs nested submissions inline on the worker thread.
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<int> count{0};
  std::atomic<bool> nested_on_worker{false};
  pool.submit([&] {
    for (int i = 0; i < 16; ++i) {
      pool.submit([&] {
        nested_on_worker = nested_on_worker || pool.on_worker_thread();
        count.fetch_add(1);
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16);
  EXPECT_TRUE(nested_on_worker.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  bool called = false;
  parallel_for_indexed(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);

  const std::vector<int> out =
      parallel_map(0, 4, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<int> visits(kN, 0);  // slot i is only touched by fn(i)
  parallel_for_indexed(kN, 8, [&](std::size_t i) { visits[i] += 1; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, RethrowsTheLowestFailingIndex) {
  try {
    parallel_for_indexed(64, 4, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  struct NoDefault {
    explicit NoDefault(std::size_t v) : value(v) {}
    std::size_t value;
  };
  const auto out = parallel_map(
      64, 4, [](std::size_t i) { return NoDefault(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, i * i);
  }
}

TEST(ParallelMap, JobCountDoesNotChangeResults) {
  // Index-derived Rng streams are the pattern every parallel call site
  // uses; the draw sequence must depend only on (seed, index).
  auto draw = [](std::size_t i) {
    Rng rng = Rng::stream(42, i);
    std::vector<double> values;
    for (int k = 0; k < 8; ++k) values.push_back(rng.uniform(0.0, 1.0));
    return values;
  };
  const auto serial = parallel_map(32, 1, draw);
  const auto parallel = parallel_map(32, 4, draw);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ResolveJobsMapsZeroToHardwareDefault) {
  EXPECT_EQ(ThreadPool::resolve_jobs(0), ThreadPool::default_jobs());
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, StopDrainsEveryQueuedTaskBeforeReturning) {
  ThreadPool pool(2, /*queue_capacity=*/64);
  std::atomic<int> count{0};
  for (int i = 0; i < 48; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.stop();
  EXPECT_EQ(count.load(), 48);
  EXPECT_TRUE(pool.stopped());

  // The queue is closed: late submissions fail loudly instead of racing
  // the shutdown.
  EXPECT_THROW(pool.submit([] {}), LogicError);
  // Idempotent; the destructor's implicit stop() is a no-op too.
  EXPECT_NO_THROW(pool.stop());
}

TEST(ThreadPool, StopUnblocksSubmitterWaitingOnAFullQueue) {
  // The shutdown race stop() exists to close: a submitter blocked on a
  // full queue while the pool is being torn down. With the drain/stop
  // handshake it must wake up and throw — never push into a pool whose
  // destructor already counted the queue as drained, and never deadlock.
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {  // occupies the single worker until released
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  pool.submit([&] { ran.fetch_add(1); });  // fills the queue

  std::atomic<bool> rejected{false};
  std::thread submitter([&] {
    try {
      pool.submit([&] { ran.fetch_add(1); });  // blocks: queue is full
      ran.fetch_add(0);
    } catch (const LogicError&) {
      rejected = true;
    }
  });

  // Let the submitter reach the full-queue wait, then begin the shutdown
  // while the worker is still pinned (so the queue stays full throughout).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release = true;
  });
  pool.stop();
  submitter.join();
  releaser.join();

  EXPECT_TRUE(pool.stopped());
  EXPECT_TRUE(rejected.load()) << "blocked submitter must be turned away";
  EXPECT_EQ(ran.load(), 2) << "both accepted tasks ran before stop returned";
}

}  // namespace
}  // namespace topil
