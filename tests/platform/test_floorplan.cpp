#include "platform/floorplan.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

TEST(Floorplan, NodeInventoryForHikey) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  // 8 cores + 2 cluster nodes + package + heatsink + NPU = 13 nodes.
  EXPECT_EQ(fp.nodes.size(), 13u);
  EXPECT_EQ(fp.core_nodes.size(), 8u);
  EXPECT_EQ(fp.cluster_nodes.size(), 2u);
  EXPECT_NE(fp.npu_node, kNoNode);
}

TEST(Floorplan, NoNpuNodeWithoutNpu) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back(
      {"uni", 2, VFTable({{1.0, 0.8}}), PowerCoefficients{}});
  const PlatformSpec p(std::move(clusters), NpuSpec{});
  const Floorplan fp = Floorplan::for_platform(p);
  EXPECT_EQ(fp.npu_node, kNoNode);
  // 2 cores + 1 cluster + package + heatsink.
  EXPECT_EQ(fp.nodes.size(), 5u);
}

TEST(Floorplan, EveryCoreCouplesToItsClusterNode) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  for (CoreId core = 0; core < p.num_cores(); ++core) {
    const std::size_t core_node = fp.core_nodes[core];
    const std::size_t cluster_node =
        fp.cluster_nodes[p.cluster_of_core(core)];
    bool found = false;
    for (const auto& c : fp.conductances) {
      found |= (c.a == core_node && c.b == cluster_node) ||
               (c.b == core_node && c.a == cluster_node);
    }
    EXPECT_TRUE(found) << "core " << core;
  }
}

TEST(Floorplan, AdjacentCoresShareLateralConductance) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const FloorplanParams params;
  const Floorplan fp = Floorplan::for_platform(p, params);
  // Cores 0-1 in the LITTLE row are adjacent; cores 3-4 span clusters and
  // must NOT be directly connected.
  auto connected = [&](std::size_t a, std::size_t b) {
    for (const auto& c : fp.conductances) {
      if ((c.a == a && c.b == b) || (c.a == b && c.b == a)) return true;
    }
    return false;
  };
  EXPECT_TRUE(connected(fp.core_nodes[0], fp.core_nodes[1]));
  EXPECT_TRUE(connected(fp.core_nodes[5], fp.core_nodes[6]));
  EXPECT_FALSE(connected(fp.core_nodes[3], fp.core_nodes[4]));
  // Cluster blocks couple laterally.
  EXPECT_TRUE(connected(fp.cluster_nodes[0], fp.cluster_nodes[1]));
}

TEST(Floorplan, GraphIsConnectedToHeatsink) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  // BFS from the heatsink must reach every node.
  std::vector<bool> seen(fp.nodes.size(), false);
  std::vector<std::size_t> queue = {fp.heatsink_node};
  seen[fp.heatsink_node] = true;
  while (!queue.empty()) {
    const std::size_t n = queue.back();
    queue.pop_back();
    for (const auto& c : fp.conductances) {
      const std::size_t other =
          c.a == n ? c.b : (c.b == n ? c.a : kNoNode);
      if (other != kNoNode && !seen[other]) {
        seen[other] = true;
        queue.push_back(other);
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << fp.nodes[i].name;
  }
}

TEST(Floorplan, CapacitancesFollowParams) {
  const PlatformSpec p = PlatformSpec::hikey970();
  FloorplanParams params;
  params.core_capacitance_j_per_k = 1.25;
  params.package_capacitance_j_per_k = 33.0;
  const Floorplan fp = Floorplan::for_platform(p, params);
  EXPECT_DOUBLE_EQ(fp.nodes[fp.core_nodes[0]].capacitance_j_per_k, 1.25);
  EXPECT_DOUBLE_EQ(fp.nodes[fp.package_node].capacitance_j_per_k, 33.0);
}

}  // namespace
}  // namespace topil
