#include "platform/floorplan.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

TEST(Floorplan, NodeInventoryForHikey) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  // 8 cores + 2 cluster nodes + package + heatsink + NPU = 13 nodes.
  EXPECT_EQ(fp.nodes.size(), 13u);
  EXPECT_EQ(fp.core_nodes.size(), 8u);
  EXPECT_EQ(fp.cluster_nodes.size(), 2u);
  EXPECT_NE(fp.npu_node, kNoNode);
}

TEST(Floorplan, NoNpuNodeWithoutNpu) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back(
      {"uni", 2, VFTable({{1.0, 0.8}}), PowerCoefficients{}});
  const PlatformSpec p(std::move(clusters), NpuSpec{});
  const Floorplan fp = Floorplan::for_platform(p);
  EXPECT_EQ(fp.npu_node, kNoNode);
  // 2 cores + 1 cluster + package + heatsink.
  EXPECT_EQ(fp.nodes.size(), 5u);
}

TEST(Floorplan, EveryCoreCouplesToItsClusterNode) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  for (CoreId core = 0; core < p.num_cores(); ++core) {
    const std::size_t core_node = fp.core_nodes[core];
    const std::size_t cluster_node =
        fp.cluster_nodes[p.cluster_of_core(core)];
    bool found = false;
    for (const auto& c : fp.conductances) {
      found |= (c.a == core_node && c.b == cluster_node) ||
               (c.b == core_node && c.a == cluster_node);
    }
    EXPECT_TRUE(found) << "core " << core;
  }
}

TEST(Floorplan, AdjacentCoresShareLateralConductance) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const FloorplanParams params;
  const Floorplan fp = Floorplan::for_platform(p, params);
  // Cores 0-1 in the LITTLE row are adjacent; cores 3-4 span clusters and
  // must NOT be directly connected.
  auto connected = [&](std::size_t a, std::size_t b) {
    for (const auto& c : fp.conductances) {
      if ((c.a == a && c.b == b) || (c.a == b && c.b == a)) return true;
    }
    return false;
  };
  EXPECT_TRUE(connected(fp.core_nodes[0], fp.core_nodes[1]));
  EXPECT_TRUE(connected(fp.core_nodes[5], fp.core_nodes[6]));
  EXPECT_FALSE(connected(fp.core_nodes[3], fp.core_nodes[4]));
  // Cluster blocks couple laterally.
  EXPECT_TRUE(connected(fp.cluster_nodes[0], fp.cluster_nodes[1]));
}

TEST(Floorplan, GraphIsConnectedToHeatsink) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const Floorplan fp = Floorplan::for_platform(p);
  // BFS from the heatsink must reach every node.
  std::vector<bool> seen(fp.nodes.size(), false);
  std::vector<std::size_t> queue = {fp.heatsink_node};
  seen[fp.heatsink_node] = true;
  while (!queue.empty()) {
    const std::size_t n = queue.back();
    queue.pop_back();
    for (const auto& c : fp.conductances) {
      const std::size_t other =
          c.a == n ? c.b : (c.b == n ? c.a : kNoNode);
      if (other != kNoNode && !seen[other]) {
        seen[other] = true;
        queue.push_back(other);
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << fp.nodes[i].name;
  }
}

// --- package-grid spreader refinement ---------------------------------

// An explicit grid of 1 must be byte-identical to the classic lumped
// topology — same node/conductance sequence and the same jitter stream,
// so structural hashes and every recorded trace stay unchanged.
TEST(Floorplan, PackageGridOneMatchesClassicTopology) {
  const PlatformSpec p = PlatformSpec::hikey970();
  FloorplanParams params;
  params.jitter_rel = 0.03;  // exercise the jitter stream too
  params.jitter_seed = 7;
  const Floorplan classic = Floorplan::for_platform(p, params);
  params.package_grid = 1;
  const Floorplan grid1 = Floorplan::for_platform(p, params);

  ASSERT_EQ(classic.nodes.size(), grid1.nodes.size());
  for (std::size_t i = 0; i < classic.nodes.size(); ++i) {
    EXPECT_EQ(classic.nodes[i].name, grid1.nodes[i].name);
    EXPECT_EQ(classic.nodes[i].capacitance_j_per_k,
              grid1.nodes[i].capacitance_j_per_k);
  }
  ASSERT_EQ(classic.conductances.size(), grid1.conductances.size());
  for (std::size_t i = 0; i < classic.conductances.size(); ++i) {
    EXPECT_EQ(classic.conductances[i].a, grid1.conductances[i].a);
    EXPECT_EQ(classic.conductances[i].b, grid1.conductances[i].b);
    EXPECT_EQ(classic.conductances[i].g_w_per_k,
              grid1.conductances[i].g_w_per_k);
  }
}

// Refining the spreader must conserve the package totals: the g x g cells
// sum to the lumped capacitance and the per-cell vertical conductances sum
// to the lumped package-to-heatsink conductance.
TEST(Floorplan, PackageGridConservesTotalsAndSpreadsSources) {
  const PlatformSpec p = PlatformSpec::hikey970();
  FloorplanParams params;
  params.package_grid = 4;
  const Floorplan fp = Floorplan::for_platform(p, params);

  // 16 package cells + 8 cores + 2 clusters + NPU + heatsink.
  EXPECT_EQ(fp.nodes.size(), 16u + 8u + 2u + 1u + 1u);
  double package_cap = 0.0;
  std::size_t package_cells = 0;
  for (const auto& n : fp.nodes) {
    if (n.kind == ThermalNodeKind::Package) {
      package_cap += n.capacitance_j_per_k;
      ++package_cells;
    }
  }
  EXPECT_EQ(package_cells, 16u);
  EXPECT_NEAR(package_cap, params.package_capacitance_j_per_k, 1e-12);
  EXPECT_EQ(fp.nodes[fp.package_node].kind, ThermalNodeKind::Package);

  double vertical_g = 0.0;
  for (const auto& c : fp.conductances) {
    if (c.a == fp.heatsink_node || c.b == fp.heatsink_node) {
      vertical_g += c.g_w_per_k;
    }
  }
  EXPECT_NEAR(vertical_g, params.package_to_heatsink_g, 1e-12);

  // Each heat source lands on its own spreader cell so hot spots resolve.
  auto attachment = [&fp](std::size_t source_node) {
    for (const auto& c : fp.conductances) {
      if (c.a == source_node &&
          fp.nodes[c.b].kind == ThermalNodeKind::Package) {
        return c.b;
      }
      if (c.b == source_node &&
          fp.nodes[c.a].kind == ThermalNodeKind::Package) {
        return c.a;
      }
    }
    return kNoNode;
  };
  const std::size_t cell0 = attachment(fp.cluster_nodes[0]);
  const std::size_t cell1 = attachment(fp.cluster_nodes[1]);
  const std::size_t cell_npu = attachment(fp.npu_node);
  ASSERT_NE(cell0, kNoNode);
  ASSERT_NE(cell1, kNoNode);
  ASSERT_NE(cell_npu, kNoNode);
  EXPECT_NE(cell0, cell1);
  EXPECT_NE(cell0, cell_npu);
  EXPECT_NE(cell1, cell_npu);
}

TEST(Floorplan, PackageGridGraphIsConnectedToHeatsink) {
  const PlatformSpec p = PlatformSpec::hikey970();
  FloorplanParams params;
  params.package_grid = 5;
  const Floorplan fp = Floorplan::for_platform(p, params);
  std::vector<bool> seen(fp.nodes.size(), false);
  std::vector<std::size_t> queue = {fp.heatsink_node};
  seen[fp.heatsink_node] = true;
  while (!queue.empty()) {
    const std::size_t n = queue.back();
    queue.pop_back();
    for (const auto& c : fp.conductances) {
      const std::size_t other =
          c.a == n ? c.b : (c.b == n ? c.a : kNoNode);
      if (other != kNoNode && !seen[other]) {
        seen[other] = true;
        queue.push_back(other);
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << fp.nodes[i].name;
  }
}

TEST(Floorplan, CapacitancesFollowParams) {
  const PlatformSpec p = PlatformSpec::hikey970();
  FloorplanParams params;
  params.core_capacitance_j_per_k = 1.25;
  params.package_capacitance_j_per_k = 33.0;
  const Floorplan fp = Floorplan::for_platform(p, params);
  EXPECT_DOUBLE_EQ(fp.nodes[fp.core_nodes[0]].capacitance_j_per_k, 1.25);
  EXPECT_DOUBLE_EQ(fp.nodes[fp.package_node].capacitance_j_per_k, 33.0);
}

}  // namespace
}  // namespace topil
