#include "platform/vf_table.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

VFTable table3() {
  return VFTable({{0.5, 0.7}, {1.0, 0.8}, {1.5, 0.9}});
}

TEST(VFTable, BasicAccessors) {
  const VFTable vf = table3();
  EXPECT_EQ(vf.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(vf.min_freq(), 0.5);
  EXPECT_DOUBLE_EQ(vf.max_freq(), 1.5);
  EXPECT_DOUBLE_EQ(vf.at(1).freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(vf.at(1).voltage_v, 0.8);
  EXPECT_THROW(vf.at(3), InvalidArgument);
}

TEST(VFTable, LevelOfExactFrequency) {
  const VFTable vf = table3();
  EXPECT_EQ(vf.level_of(0.5), 0u);
  EXPECT_EQ(vf.level_of(1.5), 2u);
  EXPECT_THROW(vf.level_of(0.75), InvalidArgument);
}

TEST(VFTable, LowestLevelAtLeast) {
  const VFTable vf = table3();
  EXPECT_EQ(vf.lowest_level_at_least(0.1), 0u);
  EXPECT_EQ(vf.lowest_level_at_least(0.5), 0u);
  EXPECT_EQ(vf.lowest_level_at_least(0.51), 1u);
  EXPECT_EQ(vf.lowest_level_at_least(1.0), 1u);
  EXPECT_EQ(vf.lowest_level_at_least(1.5), 2u);
  // Beyond the peak: sentinel value num_levels().
  EXPECT_EQ(vf.lowest_level_at_least(1.6), 3u);
}

TEST(VFTable, LevelForDemandSaturates) {
  const VFTable vf = table3();
  EXPECT_EQ(vf.level_for_demand(99.0), 2u);
  EXPECT_EQ(vf.level_for_demand(0.7), 1u);
}

TEST(VFTable, ValidatesConstruction) {
  EXPECT_THROW(VFTable({}), InvalidArgument);
  // Non-ascending frequency.
  EXPECT_THROW(VFTable({{1.0, 0.8}, {0.5, 0.7}}), InvalidArgument);
  // Decreasing voltage with rising frequency.
  EXPECT_THROW(VFTable({{0.5, 0.9}, {1.0, 0.8}}), InvalidArgument);
  // Non-positive values.
  EXPECT_THROW(VFTable({{0.0, 0.7}}), InvalidArgument);
  EXPECT_THROW(VFTable({{0.5, 0.0}}), InvalidArgument);
}

}  // namespace
}  // namespace topil
