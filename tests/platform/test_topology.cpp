// TopologySpec is the topology-agnostic front door of the platform layer:
// N named tiers positioned on the calibrated perf axis, optionally placed
// on a many-core grid. These tests pin its bit-exactness contract against
// the HiKey970 reference calibration (endpoint copies, symmetric midpoint)
// and sweep the 1-4 tier x 1-16 cores/tier shape space the scenario
// generator draws from.

#include <gtest/gtest.h>

#include "platform/topology.hpp"

namespace topil {
namespace {

void expect_same_vf(const VFTable& a, const VFTable& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (std::size_t i = 0; i < a.num_levels(); ++i) {
    EXPECT_EQ(a.at(i).freq_ghz, b.at(i).freq_ghz) << "level " << i;
    EXPECT_EQ(a.at(i).voltage_v, b.at(i).voltage_v) << "level " << i;
  }
}

void expect_same_power(const PowerCoefficients& a,
                       const PowerCoefficients& b) {
  EXPECT_EQ(a.dyn_coeff_w, b.dyn_coeff_w);
  EXPECT_EQ(a.uncore_coeff_w, b.uncore_coeff_w);
  EXPECT_EQ(a.leak_g0_w_per_v, b.leak_g0_w_per_v);
  EXPECT_EQ(a.leak_g1_w_per_v_k, b.leak_g1_w_per_v_k);
  EXPECT_EQ(a.leak_tref_c, b.leak_tref_c);
}

TEST(Topology, EndpointTiersCopyReferenceBitExactly) {
  const PlatformSpec ref = PlatformSpec::hikey970();
  const ClusterSpec lo = derive_tier(TierSpec{"efficiency", 0.0, 3});
  expect_same_vf(lo.vf, ref.cluster(kLittleCluster).vf);
  expect_same_power(lo.power, ref.cluster(kLittleCluster).power);
  EXPECT_EQ(lo.name, "efficiency");
  EXPECT_EQ(lo.num_cores, 3u);

  const ClusterSpec hi = derive_tier(TierSpec{"prime", 1.0, 2});
  expect_same_vf(hi.vf, ref.cluster(kBigCluster).vf);
  expect_same_power(hi.power, ref.cluster(kBigCluster).power);
}

TEST(Topology, MidpointTierIsSymmetricMeanOfEndpoints) {
  // blend 0.5 must reproduce the historical mid-tier derivation, which
  // computed 0.5 * (little + big) — not (1-t)*a + t*b, whose rounding can
  // differ in the last ulp.
  const PlatformSpec ref = PlatformSpec::hikey970();
  const VFTable& lo = ref.cluster(kLittleCluster).vf;
  const VFTable& hi = ref.cluster(kBigCluster).vf;
  const ClusterSpec mid = derive_tier(TierSpec{"mid", 0.5, 4});
  ASSERT_EQ(mid.vf.num_levels(), std::min(lo.num_levels(), hi.num_levels()));
  for (std::size_t i = 0; i < mid.vf.num_levels(); ++i) {
    EXPECT_EQ(mid.vf.at(i).freq_ghz,
              0.5 * (lo.at(i).freq_ghz + hi.at(i).freq_ghz));
    EXPECT_EQ(mid.vf.at(i).voltage_v,
              0.5 * (lo.at(i).voltage_v + hi.at(i).voltage_v));
  }
  const PowerCoefficients& lp = ref.cluster(kLittleCluster).power;
  const PowerCoefficients& hp = ref.cluster(kBigCluster).power;
  EXPECT_EQ(mid.power.dyn_coeff_w, 0.5 * (lp.dyn_coeff_w + hp.dyn_coeff_w));
  EXPECT_EQ(mid.power.leak_tref_c, lp.leak_tref_c);
}

TEST(Topology, ScalesApplyAfterBlending) {
  TierSpec tier{"boost", 1.0, 4};
  tier.freq_scale = 1.25;
  tier.volt_scale = 1.1;
  tier.dyn_scale = 0.5;
  tier.leak_scale = 2.0;
  const ClusterSpec scaled = derive_tier(tier);
  const ClusterSpec base = derive_tier(TierSpec{"big", 1.0, 4});
  for (std::size_t i = 0; i < base.vf.num_levels(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.vf.at(i).freq_ghz, base.vf.at(i).freq_ghz * 1.25);
    EXPECT_DOUBLE_EQ(scaled.vf.at(i).voltage_v,
                     base.vf.at(i).voltage_v * 1.1);
  }
  EXPECT_DOUBLE_EQ(scaled.power.dyn_coeff_w, base.power.dyn_coeff_w * 0.5);
  EXPECT_DOUBLE_EQ(scaled.power.uncore_coeff_w,
                   base.power.uncore_coeff_w * 0.5);
  EXPECT_DOUBLE_EQ(scaled.power.leak_g0_w_per_v,
                   base.power.leak_g0_w_per_v * 2.0);
}

TEST(Topology, PerfScoreOrdersTiersByBlendAndFreqScale) {
  TierSpec a{"a", 0.0, 1};
  TierSpec b{"b", 0.4, 1};
  TierSpec c{"c", 1.0, 1};
  EXPECT_LT(tier_perf_score(a), tier_perf_score(b));
  EXPECT_LT(tier_perf_score(b), tier_perf_score(c));
  // A heavily overclocked low tier may legitimately outrank a mid tier,
  // but a plain frequency downscale must not invert adjacent equal-IPC
  // tiers: scores scale linearly with freq_scale.
  TierSpec slow_c = c;
  slow_c.freq_scale = 0.5;
  EXPECT_DOUBLE_EQ(tier_perf_score(slow_c), 0.5 * tier_perf_score(c));
}

TEST(Topology, DeriveTierRejectsStructuralNonsense) {
  EXPECT_THROW(derive_tier(TierSpec{"", 0.5, 4}), Error);
  EXPECT_THROW(derive_tier(TierSpec{"two words", 0.5, 4}), Error);
  EXPECT_THROW(derive_tier(TierSpec{"x", -0.1, 4}), Error);
  EXPECT_THROW(derive_tier(TierSpec{"x", 1.1, 4}), Error);
  EXPECT_THROW(derive_tier(TierSpec{"x", 0.5, 0}), Error);
  EXPECT_THROW(derive_tier(TierSpec{"x", 0.5, kMaxTierCores + 1}), Error);
  TierSpec bad_scale{"x", 0.5, 4};
  bad_scale.dyn_scale = 0.0;
  EXPECT_THROW(derive_tier(bad_scale), Error);
}

TEST(Topology, BigLittlePresetMatchesHikeyReference) {
  const PlatformSpec built = TopologySpec::big_little().build();
  const PlatformSpec ref = PlatformSpec::hikey970();
  ASSERT_EQ(built.num_clusters(), ref.num_clusters());
  ASSERT_EQ(built.num_cores(), ref.num_cores());
  for (ClusterId c = 0; c < ref.num_clusters(); ++c) {
    EXPECT_EQ(built.cluster(c).num_cores, ref.cluster(c).num_cores);
    expect_same_vf(built.cluster(c).vf, ref.cluster(c).vf);
    expect_same_power(built.cluster(c).power, ref.cluster(c).power);
  }
  EXPECT_TRUE(built.npu().present);
  EXPECT_FALSE(built.grid().enabled());
  EXPECT_EQ(built.min_perf_cluster(), kLittleCluster);
  EXPECT_EQ(built.max_perf_cluster(), kBigCluster);
}

TEST(Topology, ThreeTierPresetBuilds) {
  const PlatformSpec soc = TopologySpec::three_tier().build();
  ASSERT_EQ(soc.num_clusters(), 3u);
  EXPECT_EQ(soc.num_cores(), 10u);  // 2 + 4 + 4
  EXPECT_EQ(soc.cluster(0).name, "little");
  EXPECT_EQ(soc.cluster(1).name, "mid");
  EXPECT_EQ(soc.cluster(2).name, "big");
  EXPECT_EQ(soc.min_perf_cluster(), 0u);
  EXPECT_EQ(soc.max_perf_cluster(), 2u);
  EXPECT_TRUE(soc.npu().present);
}

TEST(Topology, ManyCoreGridSplitsCoresEvenly) {
  const TopologySpec spec = TopologySpec::many_core_grid(4, 4, 3);
  ASSERT_EQ(spec.tiers.size(), 3u);
  // 16 cores over 3 tiers: extras go to the earliest (slowest) tiers.
  EXPECT_EQ(spec.tiers[0].num_cores, 6u);
  EXPECT_EQ(spec.tiers[1].num_cores, 5u);
  EXPECT_EQ(spec.tiers[2].num_cores, 5u);
  EXPECT_DOUBLE_EQ(spec.tiers[0].perf_blend, 0.0);
  EXPECT_DOUBLE_EQ(spec.tiers[1].perf_blend, 0.5);
  EXPECT_DOUBLE_EQ(spec.tiers[2].perf_blend, 1.0);

  const PlatformSpec soc = spec.build();
  EXPECT_EQ(soc.num_cores(), 16u);
  ASSERT_TRUE(soc.grid().enabled());
  EXPECT_EQ(soc.grid().rows, 4u);
  EXPECT_EQ(soc.grid().cols, 4u);
  EXPECT_FALSE(soc.npu().present);
}

TEST(Topology, GridMustCoverExactlyEveryCore) {
  TopologySpec spec;
  spec.tiers = {TierSpec{"little", 0.0, 4}, TierSpec{"big", 1.0, 4}};
  spec.grid = GridPlacement{3, 3};  // 9 cells for 8 cores
  EXPECT_THROW(spec.build(), Error);
  spec.grid = GridPlacement{2, 4};
  EXPECT_EQ(spec.build().num_cores(), 8u);
}

TEST(Topology, LegacyNameBlendMapping) {
  EXPECT_DOUBLE_EQ(legacy_tier_blend("little"), 0.0);
  EXPECT_DOUBLE_EQ(legacy_tier_blend("mid"), 0.5);
  EXPECT_DOUBLE_EQ(legacy_tier_blend("big"), 1.0);
  EXPECT_DOUBLE_EQ(legacy_tier_blend("tier0"), -1.0);
}

// Shape sweep: every tier count the scenario generator draws (1-4) with
// small, medium, and maximal per-tier core counts must build a coherent
// platform whose perf ordering follows the blend axis.
TEST(Topology, ShapeSweepBuildsCoherentPlatforms) {
  for (std::size_t n_tiers = 1; n_tiers <= 4; ++n_tiers) {
    for (std::size_t cores : {std::size_t{1}, std::size_t{5},
                              std::size_t{16}}) {
      TopologySpec spec;
      for (std::size_t i = 0; i < n_tiers; ++i) {
        TierSpec tier;
        tier.name = "tier" + std::to_string(i);
        tier.perf_blend =
            n_tiers == 1 ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(n_tiers - 1);
        tier.num_cores = cores;
        spec.tiers.push_back(tier);
      }
      const PlatformSpec soc = spec.build();
      const std::string label =
          std::to_string(n_tiers) + "x" + std::to_string(cores);
      EXPECT_EQ(soc.num_clusters(), n_tiers) << label;
      EXPECT_EQ(soc.num_cores(), n_tiers * cores) << label;
      // Ascending blends -> ascending perf order, i.e. declaration order.
      const auto& order = soc.clusters_by_perf();
      ASSERT_EQ(order.size(), n_tiers) << label;
      for (std::size_t i = 0; i < n_tiers; ++i) {
        EXPECT_EQ(order[i], i) << label;
      }
      EXPECT_EQ(soc.min_perf_cluster(), 0u) << label;
      EXPECT_EQ(soc.max_perf_cluster(), n_tiers - 1) << label;
      for (CoreId core = 0; core < soc.num_cores(); ++core) {
        EXPECT_EQ(soc.cluster_of_core(core), core / cores) << label;
      }
    }
  }
}

}  // namespace
}  // namespace topil
