#include "platform/platform.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

TEST(Platform, Hikey970Shape) {
  const PlatformSpec p = PlatformSpec::hikey970();
  EXPECT_EQ(p.num_clusters(), 2u);
  EXPECT_EQ(p.num_cores(), 8u);
  EXPECT_EQ(p.cluster(kLittleCluster).name, "LITTLE");
  EXPECT_EQ(p.cluster(kBigCluster).name, "big");
  EXPECT_EQ(p.cluster(kLittleCluster).num_cores, 4u);
  EXPECT_EQ(p.cluster(kBigCluster).num_cores, 4u);
  EXPECT_TRUE(p.npu().present);
}

TEST(Platform, Hikey970FrequenciesMatchBoard) {
  const PlatformSpec p = PlatformSpec::hikey970();
  // The board supports up to 1.84 GHz on LITTLE and 2.36 GHz on big.
  EXPECT_NEAR(p.cluster(kLittleCluster).vf.max_freq(), 1.844, 1e-9);
  EXPECT_NEAR(p.cluster(kBigCluster).vf.max_freq(), 2.362, 1e-9);
  EXPECT_NEAR(p.peak_freq_ghz(), 2.362, 1e-9);
}

TEST(Platform, CoreClusterMapping) {
  const PlatformSpec p = PlatformSpec::hikey970();
  for (CoreId core = 0; core < 4; ++core) {
    EXPECT_EQ(p.cluster_of_core(core), kLittleCluster);
    EXPECT_EQ(p.index_in_cluster(core), core);
  }
  for (CoreId core = 4; core < 8; ++core) {
    EXPECT_EQ(p.cluster_of_core(core), kBigCluster);
    EXPECT_EQ(p.index_in_cluster(core), core - 4);
  }
  EXPECT_THROW(p.cluster_of_core(8), InvalidArgument);
}

TEST(Platform, CoresOfClusterRoundTrip) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const auto little = p.cores_of_cluster(kLittleCluster);
  const auto big = p.cores_of_cluster(kBigCluster);
  ASSERT_EQ(little.size(), 4u);
  ASSERT_EQ(big.size(), 4u);
  EXPECT_EQ(little.front(), 0u);
  EXPECT_EQ(big.front(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p.core_id(kLittleCluster, i), little[i]);
    EXPECT_EQ(p.core_id(kBigCluster, i), big[i]);
  }
  EXPECT_THROW(p.core_id(kBigCluster, 4), InvalidArgument);
}

TEST(Platform, BigCoreDynPowerExceedsLittleAtAnyLevel) {
  const PlatformSpec p = PlatformSpec::hikey970();
  const auto& lp = p.cluster(kLittleCluster).power;
  const auto& bp = p.cluster(kBigCluster).power;
  EXPECT_GT(bp.dyn_coeff_w, lp.dyn_coeff_w);
  EXPECT_GT(bp.leak_g0_w_per_v, lp.leak_g0_w_per_v);
}

TEST(Platform, OdroidXu3Preset) {
  const PlatformSpec p = PlatformSpec::odroid_xu3();
  EXPECT_EQ(p.num_clusters(), 2u);
  EXPECT_EQ(p.num_cores(), 8u);
  EXPECT_EQ(p.cluster(kLittleCluster).name, "A7");
  EXPECT_EQ(p.cluster(kBigCluster).name, "A15");
  EXPECT_FALSE(p.npu().present);
  EXPECT_NEAR(p.peak_freq_ghz(), 2.0, 1e-9);
  // The A15 draws markedly more power per core than the A73 at similar
  // frequency (older process node).
  const PlatformSpec hikey = PlatformSpec::hikey970();
  EXPECT_GT(p.cluster(kBigCluster).power.dyn_coeff_w,
            hikey.cluster(kBigCluster).power.dyn_coeff_w);
}

TEST(Platform, CustomSingleClusterPlatform) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back(
      {"uni", 2, VFTable({{1.0, 0.8}}), PowerCoefficients{}});
  const PlatformSpec p(std::move(clusters), NpuSpec{});
  EXPECT_EQ(p.num_clusters(), 1u);
  EXPECT_EQ(p.num_cores(), 2u);
  EXPECT_FALSE(p.npu().present);
  EXPECT_DOUBLE_EQ(p.peak_freq_ghz(), 1.0);
}

TEST(Platform, RejectsEmptyConfigurations) {
  EXPECT_THROW(PlatformSpec({}, NpuSpec{}), InvalidArgument);
  std::vector<ClusterSpec> clusters;
  clusters.push_back({"zero", 0, VFTable({{1.0, 0.8}}), PowerCoefficients{}});
  EXPECT_THROW(PlatformSpec(std::move(clusters), NpuSpec{}),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
