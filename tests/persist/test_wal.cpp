#include "persist/wal.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "file_test_util.hpp"
#include "persist/crc32.hpp"

namespace topil::persist {
namespace {

using test::append_bytes;
using test::flip_bit;
using test::read_file;
using test::scratch_dir;
using test::truncate_file;
using test::write_file;

constexpr std::size_t kHeaderBytes = 8;    // magic + version
constexpr std::size_t kFrameOverhead = 20; // len + type + seq + crc

std::string wal_with_records(const std::string& path,
                             std::size_t count) {
  WalWriter writer = WalWriter::create(path);
  for (std::size_t i = 0; i < count; ++i) {
    writer.append(static_cast<std::uint32_t>(i),
                  "record-" + std::to_string(i));
  }
  writer.sync();
  return path;
}

/// Hand-encode one frame so tests can forge invalid sequence numbers
/// and lengths the writer itself would never produce.
std::string encode_frame(std::uint32_t type, std::uint64_t seq,
                         const std::string& payload,
                         std::uint32_t* crc_override = nullptr) {
  std::string frame;
  const auto put = [&frame](const void* p, std::size_t n) {
    frame.append(static_cast<const char*>(p), n);
  };
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  put(&len, sizeof(len));
  put(&type, sizeof(type));
  put(&seq, sizeof(seq));
  frame += payload;
  Crc32 crc;
  crc.update(&type, sizeof(type));
  crc.update(&seq, sizeof(seq));
  crc.update(payload);
  const std::uint32_t sum = crc_override ? *crc_override : crc.value();
  put(&sum, sizeof(sum));
  return frame;
}

TEST(Wal, CreateAppendRecoverRoundTrip) {
  const std::string dir = scratch_dir("wal_roundtrip");
  const std::string path = wal_with_records(dir + "/log.wal", 3);
  const WalRecovery rec = recover_wal(path);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_FALSE(rec.truncated_tail);
  EXPECT_EQ(rec.next_seq, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.records[i].type, i);
    EXPECT_EQ(rec.records[i].seq, i);
    EXPECT_EQ(rec.records[i].payload, "record-" + std::to_string(i));
  }
  EXPECT_EQ(rec.valid_bytes, read_file(path).size());
}

TEST(Wal, EmptyLogRecovers) {
  const std::string dir = scratch_dir("wal_empty");
  const std::string path = wal_with_records(dir + "/log.wal", 0);
  const WalRecovery rec = recover_wal(path);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_FALSE(rec.truncated_tail);
  EXPECT_EQ(rec.valid_bytes, kHeaderBytes);
}

TEST(Wal, TornFrameIsDetectedAtEveryTruncationPoint) {
  const std::string dir = scratch_dir("wal_torn");
  const std::string path = wal_with_records(dir + "/log.wal", 2);
  const std::string full = read_file(path);
  const std::size_t frame0_end =
      kHeaderBytes + kFrameOverhead + std::strlen("record-0");
  // Cut anywhere inside the second frame: the first record survives,
  // the tail is reported torn, and nothing throws.
  for (std::size_t len = frame0_end; len < full.size(); ++len) {
    write_file(path, full.substr(0, len));
    const WalRecovery rec = recover_wal(path);
    ASSERT_EQ(rec.records.size(), 1u) << "cut at " << len;
    EXPECT_EQ(rec.truncated_tail, len != frame0_end) << "cut at " << len;
    EXPECT_EQ(rec.valid_bytes, frame0_end) << "cut at " << len;
  }
}

TEST(Wal, BitFlippedCrcDropsFrameAndTail) {
  const std::string dir = scratch_dir("wal_crcflip");
  const std::string path = wal_with_records(dir + "/log.wal", 3);
  const std::size_t frame0_end =
      kHeaderBytes + kFrameOverhead + std::strlen("record-0");
  flip_bit(path, frame0_end - 1, 0);  // last CRC byte of frame 0
  const WalRecovery rec = recover_wal(path);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_TRUE(rec.truncated_tail);
  EXPECT_EQ(rec.valid_bytes, kHeaderBytes);
}

TEST(Wal, BitFlippedPayloadFailsCrc) {
  const std::string dir = scratch_dir("wal_payloadflip");
  const std::string path = wal_with_records(dir + "/log.wal", 2);
  flip_bit(path, kHeaderBytes + 16, 3);  // first payload byte of frame 0
  const WalRecovery rec = recover_wal(path);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_TRUE(rec.truncated_tail);
}

TEST(Wal, ImplausibleLengthRejectedWithoutAllocation) {
  const std::string dir = scratch_dir("wal_hugelen");
  const std::string path = wal_with_records(dir + "/log.wal", 1);
  // Forge a frame whose length field claims > kWalMaxPayload bytes.
  std::string frame = encode_frame(9, 1, "x");
  const std::uint32_t huge = 0xfffffff0u;
  std::memcpy(frame.data(), &huge, sizeof(huge));
  append_bytes(path, frame);
  const WalRecovery rec = recover_wal(path);
  ASSERT_EQ(rec.records.size(), 1u);  // the valid frame survives
  EXPECT_TRUE(rec.truncated_tail);
}

TEST(Wal, SequenceBreakStopsReplay) {
  const std::string dir = scratch_dir("wal_seqbreak");
  const std::string path = wal_with_records(dir + "/log.wal", 1);
  // A frame with a valid CRC but seq 5 (expected 1) must be discarded.
  append_bytes(path, encode_frame(2, 5, "stray"));
  const WalRecovery rec = recover_wal(path);
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_TRUE(rec.truncated_tail);
  EXPECT_EQ(rec.next_seq, 1u);
}

TEST(Wal, OpenForAppendTruncatesTornTailAndContinues) {
  const std::string dir = scratch_dir("wal_reopen");
  const std::string path = wal_with_records(dir + "/log.wal", 2);
  const std::string full = read_file(path);
  truncate_file(path, full.size() - 3);  // tear the second frame

  WalRecovery recovery;
  WalWriter writer = WalWriter::open_for_append(path, &recovery);
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_TRUE(recovery.truncated_tail);
  EXPECT_EQ(writer.append(7, "after-crash"), 1u);
  writer.sync();

  const WalRecovery rec = recover_wal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_FALSE(rec.truncated_tail);
  EXPECT_EQ(rec.records[1].type, 7u);
  EXPECT_EQ(rec.records[1].payload, "after-crash");
}

TEST(Wal, OpenForAppendCreatesMissingFile) {
  const std::string dir = scratch_dir("wal_fresh");
  WalRecovery recovery;
  WalWriter writer = WalWriter::open_for_append(dir + "/new.wal", &recovery);
  EXPECT_TRUE(recovery.records.empty());
  writer.append(0, "first");
  writer.sync();
  EXPECT_EQ(recover_wal(dir + "/new.wal").records.size(), 1u);
}

TEST(Wal, NotAWalThrows) {
  const std::string dir = scratch_dir("wal_badmagic");
  const std::string path = dir + "/not.wal";
  write_file(path, "this is not a write-ahead log at all");
  EXPECT_THROW(recover_wal(path), Error);
}

TEST(Wal, ShortHeaderIsATornTailNotAnError) {
  // A crash can land before the 8-byte header is complete; that file is
  // recoverable (empty, torn), not corrupt.
  const std::string dir = scratch_dir("wal_short");
  const std::string path = dir + "/short.wal";
  const std::string header = read_file(wal_with_records(dir + "/ref.wal", 0));
  write_file(path, "");
  EXPECT_FALSE(recover_wal(path).truncated_tail);  // empty file: fresh log
  for (std::size_t len = 1; len < kHeaderBytes; ++len) {
    write_file(path, header.substr(0, len));
    const WalRecovery rec = recover_wal(path);
    EXPECT_TRUE(rec.records.empty()) << "header length " << len;
    EXPECT_TRUE(rec.truncated_tail) << "header length " << len;
    // open_for_append starts the log over from a torn header.
    WalWriter writer = WalWriter::open_for_append(path);
    writer.append(0, "recovered");
    writer.sync();
    EXPECT_EQ(recover_wal(path).records.size(), 1u) << len;
  }
}

TEST(Wal, MissingFileThrowsOnRecover) {
  EXPECT_THROW(recover_wal(scratch_dir("wal_missing") + "/nope.wal"), Error);
}

}  // namespace
}  // namespace topil::persist
