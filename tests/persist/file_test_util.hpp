#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

// Shared corruption-injection helpers: read/rewrite files byte-wise so
// tests can truncate at arbitrary boundaries and flip individual bits.
namespace topil::test {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

inline void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

inline void truncate_file(const std::string& path, std::size_t len) {
  std::filesystem::resize_file(path, len);
}

inline void flip_bit(const std::string& path, std::size_t byte,
                     unsigned bit) {
  std::string bytes = read_file(path);
  ASSERT_LT(byte, bytes.size());
  bytes[byte] = static_cast<char>(bytes[byte] ^ (1u << bit));
  write_file(path, bytes);
}

inline void append_bytes(const std::string& path, const std::string& extra) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(extra.data(), static_cast<std::streamsize>(extra.size()));
  EXPECT_TRUE(out.good()) << path;
}

/// Fresh per-test scratch directory under gtest's temp dir.
inline std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "topil_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace topil::test
