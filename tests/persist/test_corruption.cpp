#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "file_test_util.hpp"
#include "il/dataset.hpp"
#include "nn/serialize.hpp"
#include "rl/qtable.hpp"

// Corruption-injection sweeps over the three persisted artifact formats
// (model "TOPL", dataset "TOPD", Q-table "TOPQ"): every truncation point
// and every header bit flip must raise a clean error — never UB and never
// an attempt to honor an implausible dimension with a giant allocation.
namespace topil {
namespace {

using test::append_bytes;
using test::flip_bit;
using test::read_file;
using test::scratch_dir;
using test::write_file;

il::Dataset sample_dataset() {
  il::Dataset data(3, 2);
  for (float base : {1.0f, 2.0f, 3.0f}) {
    il::TrainingExample ex;
    ex.features = {base, base + 0.5f, base + 1.0f};
    ex.labels = {base * 2.0f, base * 3.0f};
    data.add(std::move(ex));
  }
  return data;
}

nn::Mlp sample_model() {
  nn::Topology topo;
  topo.inputs = 4;
  topo.outputs = 3;
  topo.hidden = {5};
  nn::Mlp model(topo);
  model.init(11);
  return model;
}

rl::QTable sample_qtable() {
  rl::QTable table(6, 4, 0.0);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t a = 0; a < 4; ++a) {
      table.set_q(s, a, static_cast<double>(s * 10 + a));
    }
  }
  return table;
}

/// Every prefix of the file must fail to load; so must every single-bit
/// flip within the first `header_bytes`; so must one trailing byte.
template <typename LoadFn>
void sweep(const std::string& path, std::size_t header_bytes,
           const LoadFn& load) {
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), header_bytes);

  for (std::size_t len = 0; len < full.size(); ++len) {
    write_file(path, full.substr(0, len));
    EXPECT_THROW(load(path), Error) << "truncated to " << len;
  }
  for (std::size_t byte = 0; byte < header_bytes; ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      write_file(path, full);
      flip_bit(path, byte, bit);
      EXPECT_THROW(load(path), Error)
          << "flip byte " << byte << " bit " << bit;
    }
  }
  write_file(path, full);
  append_bytes(path, "Z");
  EXPECT_THROW(load(path), Error) << "trailing garbage";

  write_file(path, full);  // pristine file still loads
  load(path);
}

TEST(Corruption, DatasetSweep) {
  const std::string path = scratch_dir("corrupt_dataset") + "/data.bin";
  sample_dataset().save(path);
  // Header: u32 magic + u64 feature width + u64 label width + u64 count.
  sweep(path, 4 + 3 * 8,
        [](const std::string& p) { (void)il::Dataset::load(p); });

  const il::Dataset back = il::Dataset::load(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.at(1).features, sample_dataset().at(1).features);
}

TEST(Corruption, ModelSweep) {
  const std::string path = scratch_dir("corrupt_model") + "/model.bin";
  save_model(sample_model(), path);
  // Header: magic + version + inputs + outputs + n_hidden + hidden[0]
  // + weight count.
  sweep(path, 2 * 4 + 5 * 8,
        [](const std::string& p) { (void)nn::load_model(p); });

  const nn::Mlp back = nn::load_model(path);
  EXPECT_EQ(back.save_weights(), sample_model().save_weights());
}

TEST(Corruption, QTableSweep) {
  const std::string path = scratch_dir("corrupt_qtable") + "/table.bin";
  sample_qtable().save(path);
  // Header: magic + version + u64 states + u64 actions.
  sweep(path, 2 * 4 + 2 * 8,
        [](const std::string& p) { (void)rl::QTable::load(p); });

  const rl::QTable back = rl::QTable::load(path);
  EXPECT_EQ(back.q(5, 3), 53.0);
}

TEST(Corruption, QTableLegacyFormatStillLoads) {
  // Artifacts written before the versioned header: two raw u64
  // dimensions followed by the values.
  const std::string path = scratch_dir("qtable_legacy") + "/legacy.bin";
  const rl::QTable table = sample_qtable();
  std::string bytes;
  const auto put = [&bytes](const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t s = 6;
  const std::uint64_t a = 4;
  put(&s, sizeof(s));
  put(&a, sizeof(a));
  for (std::size_t state = 0; state < 6; ++state) {
    for (std::size_t action = 0; action < 4; ++action) {
      const double q = table.q(state, action);
      put(&q, sizeof(q));
    }
  }
  write_file(path, bytes);

  const rl::QTable back = rl::QTable::load(path);
  EXPECT_EQ(back.q(0, 0), 0.0);
  EXPECT_EQ(back.q(5, 3), 53.0);

  // Legacy files get the same hardening: truncation and trailing bytes
  // are rejected, and an absurd dimension cannot drive an allocation.
  write_file(path, bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW(rl::QTable::load(path), Error);
  write_file(path, bytes + "x");
  EXPECT_THROW(rl::QTable::load(path), Error);
  std::string huge = bytes;
  const std::uint64_t absurd = 1ull << 40;
  huge.replace(0, sizeof(absurd),
               reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  write_file(path, huge);
  EXPECT_THROW(rl::QTable::load(path), Error);
}

TEST(Corruption, EmptyFilesRejected) {
  const std::string dir = scratch_dir("corrupt_empty");
  write_file(dir + "/empty.bin", "");
  EXPECT_THROW(il::Dataset::load(dir + "/empty.bin"), Error);
  EXPECT_THROW(nn::load_model(dir + "/empty.bin"), Error);
  EXPECT_THROW(rl::QTable::load(dir + "/empty.bin"), Error);
}

}  // namespace
}  // namespace topil
