#include "persist/checkpoint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.hpp"
#include "file_test_util.hpp"
#include "governors/topil_governor.hpp"
#include "il/features.hpp"
#include "scenario/scenario_spec.hpp"
#include "validate/digest_monitor.hpp"
#include "workloads/generator.hpp"

namespace topil::persist {
namespace {

using test::append_bytes;
using test::flip_bit;
using test::read_file;
using test::scratch_dir;
using test::truncate_file;
using test::write_file;

constexpr std::size_t kFrameHeader = 20;  // magic+version+size+crc

TEST(CheckpointFile, RoundTrip) {
  const std::string dir = scratch_dir("topc_roundtrip");
  const std::string path = dir + "/state.ckpt";
  const std::string payload = "checkpoint payload \x00\x01\x02 bytes";
  write_checkpoint_file(path, payload);
  EXPECT_EQ(read_checkpoint_file(path), payload);
}

TEST(CheckpointFile, EmptyPayloadRoundTrips) {
  const std::string dir = scratch_dir("topc_empty");
  const std::string path = dir + "/state.ckpt";
  write_checkpoint_file(path, "");
  EXPECT_EQ(read_checkpoint_file(path), "");
}

TEST(CheckpointFile, TruncationAtEveryByteRejected) {
  const std::string dir = scratch_dir("topc_trunc");
  const std::string path = dir + "/state.ckpt";
  write_checkpoint_file(path, "0123456789abcdef");
  const std::string full = read_file(path);
  ASSERT_EQ(full.size(), kFrameHeader + 16);
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_file(path, full.substr(0, len));
    EXPECT_THROW(read_checkpoint_file(path), Error) << "truncated to " << len;
  }
}

TEST(CheckpointFile, EveryHeaderBitFlipRejected) {
  const std::string dir = scratch_dir("topc_flip");
  const std::string path = dir + "/state.ckpt";
  write_checkpoint_file(path, "0123456789abcdef");
  const std::string full = read_file(path);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      write_file(path, full);
      flip_bit(path, byte, bit);
      EXPECT_THROW(read_checkpoint_file(path), Error)
          << "flip byte " << byte << " bit " << bit;
    }
  }
  write_file(path, full);  // pristine again: still readable
  EXPECT_EQ(read_checkpoint_file(path), "0123456789abcdef");
}

TEST(CheckpointFile, TrailingGarbageRejected) {
  const std::string dir = scratch_dir("topc_garbage");
  const std::string path = dir + "/state.ckpt";
  write_checkpoint_file(path, "payload");
  append_bytes(path, "x");
  EXPECT_THROW(read_checkpoint_file(path), Error);
}

TEST(CheckpointFile, MissingFileThrows) {
  EXPECT_THROW(read_checkpoint_file(scratch_dir("topc_none") + "/no.ckpt"),
               Error);
}

// --- checkpointed experiment runs --------------------------------------

class CheckpointedRunTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  Workload workload() const {
    const WorkloadGenerator generator(platform_);
    WorkloadGenerator::MixedConfig wc;
    wc.num_apps = 6;
    wc.arrival_rate_per_s = 0.2;
    wc.seed = 3;
    return generator.mixed(wc, AppDatabase::instance().mixed_pool());
  }

  ExperimentConfig run_config(double duration_s) const {
    ExperimentConfig config;
    config.sim.seed = 17;
    config.max_duration_s = duration_s;
    return config;
  }

  std::unique_ptr<Governor> governor(const std::string& name) const {
    if (name == "topil") {
      // Untrained policy: determinism (not quality) is under test, and a
      // TopIlGovernor exercises the DVFS/NPU/pending-job snapshot path.
      nn::Topology topo;
      topo.inputs = il::FeatureExtractor(platform_).num_features();
      topo.outputs = platform_.num_cores();
      topo.hidden = {8, 8};
      nn::Mlp policy(topo);
      policy.init(19);
      return std::make_unique<TopIlGovernor>(
          il::IlPolicyModel(std::move(policy), platform_));
    }
    return scenario::make_scenario_governor(name, platform_, 23);
  }

  std::uint64_t golden_digest(const std::string& name, double duration_s) {
    validate::DigestMonitor monitor;
    ExperimentConfig config = run_config(duration_s);
    config.monitor = &monitor;
    const auto gov = governor(name);
    run_experiment(platform_, *gov, workload(), config);
    return monitor.digest();
  }
};

TEST_F(CheckpointedRunTest, UninterruptedRunMatchesPlainDigest) {
  const std::uint64_t golden = golden_digest("gts-ondemand", 90.0);

  const std::string dir = scratch_dir("ck_uninterrupted");
  CheckpointOptions options;
  options.path = dir + "/run.ckpt";
  options.every_s = 7.0;
  options.meta = "test-run";
  const auto gov = governor("gts-ondemand");
  const CheckpointedResult result = run_experiment_checkpointed(
      platform_, *gov, workload(), run_config(90.0), options);
  EXPECT_EQ(result.digest, golden);
  EXPECT_FALSE(result.resumed);
  EXPECT_GT(result.checkpoints_written, 0u);
}

TEST_F(CheckpointedRunTest, InterruptedResumeIsBitIdenticalAcrossGovernors) {
  // Each governor family persists different state (schedutil's ramp
  // history, toprl's Q-table and exploration stream, topil's NPU batch);
  // every one must continue bit-identically from a mid-run checkpoint.
  for (const std::string name :
       {"gts-ondemand", "gts-schedutil", "toprl", "topil"}) {
    SCOPED_TRACE(name);
    const std::uint64_t golden = golden_digest(name, 90.0);

    const std::string dir = scratch_dir("ck_resume_" + name);
    CheckpointOptions options;
    options.path = dir + "/run.ckpt";
    options.every_s = 7.0;
    options.meta = "resume-test " + name;

    // Phase 1 plays the role of the killed process: it runs only the
    // first 30 simulated seconds, leaving its last checkpoint behind.
    {
      const auto gov = governor(name);
      run_experiment_checkpointed(platform_, *gov, workload(),
                                  run_config(30.0), options);
    }
    // Phase 2: fresh objects, resume from disk, run to the full horizon.
    options.resume = true;
    const auto gov = governor(name);
    const CheckpointedResult resumed = run_experiment_checkpointed(
        platform_, *gov, workload(), run_config(90.0), options);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.digest, golden);
  }
}

TEST_F(CheckpointedRunTest, ResumeWithMissingFileStartsFresh) {
  const std::uint64_t golden = golden_digest("gts-ondemand", 60.0);
  const std::string dir = scratch_dir("ck_fresh");
  CheckpointOptions options;
  options.path = dir + "/never-written.ckpt";
  options.every_s = 9.0;
  options.resume = true;  // killed before the first checkpoint landed
  options.meta = "fresh";
  const auto gov = governor("gts-ondemand");
  const CheckpointedResult result = run_experiment_checkpointed(
      platform_, *gov, workload(), run_config(60.0), options);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.digest, golden);
}

TEST_F(CheckpointedRunTest, ResumeRejectsMetaMismatch) {
  const std::string dir = scratch_dir("ck_meta");
  CheckpointOptions options;
  options.path = dir + "/run.ckpt";
  options.every_s = 7.0;
  options.meta = "configuration A";
  {
    const auto gov = governor("gts-ondemand");
    run_experiment_checkpointed(platform_, *gov, workload(),
                                run_config(30.0), options);
  }
  options.resume = true;
  options.meta = "configuration B";
  const auto gov = governor("gts-ondemand");
  EXPECT_THROW(run_experiment_checkpointed(platform_, *gov, workload(),
                                           run_config(90.0), options),
               Error);
}

TEST_F(CheckpointedRunTest, ResumeRejectsGovernorMismatch) {
  const std::string dir = scratch_dir("ck_gov");
  CheckpointOptions options;
  options.path = dir + "/run.ckpt";
  options.every_s = 7.0;
  options.meta = "same meta";
  {
    const auto gov = governor("gts-ondemand");
    run_experiment_checkpointed(platform_, *gov, workload(),
                                run_config(30.0), options);
  }
  options.resume = true;
  const auto gov = governor("gts-schedutil");
  EXPECT_THROW(run_experiment_checkpointed(platform_, *gov, workload(),
                                           run_config(90.0), options),
               Error);
}

TEST_F(CheckpointedRunTest, CorruptCheckpointFailsCleanly) {
  const std::string dir = scratch_dir("ck_corrupt");
  CheckpointOptions options;
  options.path = dir + "/run.ckpt";
  options.every_s = 7.0;
  options.meta = "corrupt";
  {
    const auto gov = governor("gts-ondemand");
    run_experiment_checkpointed(platform_, *gov, workload(),
                                run_config(30.0), options);
  }
  const std::string full = read_file(options.path);
  options.resume = true;
  // Truncate at each frame-header boundary and flip a payload bit; every
  // case must raise a clean error, never UB or a giant allocation.
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                          std::size_t{12}, std::size_t{16}, std::size_t{19},
                          full.size() - 1}) {
    write_file(options.path, full.substr(0, len));
    const auto gov = governor("gts-ondemand");
    EXPECT_THROW(run_experiment_checkpointed(platform_, *gov, workload(),
                                             run_config(90.0), options),
                 Error)
        << "truncated to " << len;
  }
  write_file(options.path, full);
  flip_bit(options.path, kFrameHeader + full.size() / 2, 5);
  const auto gov = governor("gts-ondemand");
  EXPECT_THROW(run_experiment_checkpointed(platform_, *gov, workload(),
                                           run_config(90.0), options),
               Error);
}

}  // namespace
}  // namespace topil::persist
