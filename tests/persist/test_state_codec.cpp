#include "persist/state_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace topil::persist {
namespace {

TEST(StateCodec, RoundTripsEveryType) {
  StateWriter out;
  out.tag("TEST");
  out.u8(200);
  out.u32(0xdeadbeefu);
  out.u64(1ull << 50);
  out.i64(-42);
  out.f32(1.5f);
  out.f64(-2.25);
  out.boolean(true);
  out.boolean(false);
  out.size(77);
  out.str("hello");
  out.str("");
  out.vec_f32({1.0f, 2.0f, 3.0f});
  out.vec_f64({});
  out.vec_size({4, 5, 6});

  StateReader in(out.buffer());
  in.expect_tag("TEST");
  EXPECT_EQ(in.u8(), 200);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 1ull << 50);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.f32(), 1.5f);
  EXPECT_EQ(in.f64(), -2.25);
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.size(), 77u);
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), "");
  EXPECT_EQ(in.vec_f32(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_TRUE(in.vec_f64().empty());
  EXPECT_EQ(in.vec_size(), (std::vector<std::size_t>{4, 5, 6}));
  in.require_done();
}

TEST(StateCodec, FloatVectorsPreserveBitPatterns) {
  StateWriter out;
  out.vec_f64({std::numeric_limits<double>::denorm_min(),
               -std::numeric_limits<double>::infinity(), 0.0, -0.0});
  StateReader in(out.buffer());
  const std::vector<double> v = in.vec_f64();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(v[1], -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::signbit(v[3]));
}

TEST(StateCodec, TagMismatchThrows) {
  StateWriter out;
  out.tag("AAAA");
  StateReader in(out.buffer());
  EXPECT_THROW(in.expect_tag("BBBB"), Error);
}

TEST(StateCodec, TruncatedScalarThrows) {
  StateWriter out;
  out.u64(7);
  const std::string& buf = out.buffer();
  for (std::size_t len = 0; len < buf.size(); ++len) {
    StateReader in(std::string_view(buf.data(), len));
    EXPECT_THROW(in.u64(), Error) << "truncated to " << len;
  }
}

TEST(StateCodec, ImplausibleVectorLengthThrows) {
  // A corrupt count claiming more elements than bytes remain must be
  // rejected before any allocation happens.
  StateWriter out;
  out.u64(std::numeric_limits<std::uint64_t>::max());
  out.f64(1.0);
  StateReader in(out.buffer());
  EXPECT_THROW(in.vec_f64(), Error);
}

TEST(StateCodec, ImplausibleStringLengthThrows) {
  StateWriter out;
  out.u64(1ull << 40);
  out.raw("abc", 3);
  StateReader in(out.buffer());
  EXPECT_THROW(in.str(), Error);
}

TEST(StateCodec, TrailingGarbageRejectedByRequireDone) {
  StateWriter out;
  out.u32(1);
  out.raw("junk", 4);
  StateReader in(out.buffer());
  in.u32();
  EXPECT_THROW(in.require_done(), Error);
}

TEST(StateCodec, RemainingTracksConsumption) {
  StateWriter out;
  out.u32(1);
  out.u64(2);
  StateReader in(out.buffer());
  EXPECT_EQ(in.remaining(), 12u);
  in.u32();
  EXPECT_EQ(in.remaining(), 8u);
  in.u64();
  EXPECT_EQ(in.remaining(), 0u);
  in.require_done();
}

}  // namespace
}  // namespace topil::persist
