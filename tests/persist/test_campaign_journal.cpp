#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "file_test_util.hpp"
#include "persist/wal.hpp"
#include "scenario/campaign.hpp"

namespace topil::scenario {
namespace {

using test::read_file;
using test::scratch_dir;
using test::truncate_file;
using test::write_file;

CampaignConfig quick_config() {
  CampaignConfig config;
  config.seed = 71;
  config.count = 6;
  config.jobs = 2;
  config.shrink = false;
  config.generator.max_apps = 2;
  config.generator.min_runtime_s = 1.0;
  config.generator.max_runtime_s = 2.0;
  return config;
}

TEST(CampaignJournal, FullyJournaledResumeReExecutesNothing) {
  const std::string dir = scratch_dir("cj_full");
  CampaignConfig config = quick_config();
  config.journal_path = dir + "/campaign.wal";
  const CampaignResult golden = run_campaign(config);
  EXPECT_EQ(golden.executed, 6u);

  config.journal_resume = true;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.campaign_digest, golden.campaign_digest);
  EXPECT_EQ(resumed.executed, 6u);
  for (const ScenarioOutcome& out : resumed.outcomes) {
    EXPECT_TRUE(out.restored);
  }
}

TEST(CampaignJournal, PartialJournalResumesAndMatchesDigest) {
  const std::string dir = scratch_dir("cj_partial");
  CampaignConfig config = quick_config();
  const CampaignResult golden = run_campaign(config);

  // Journaled run, then tear the log back: drop the last three scenario
  // records (emulating a kill mid-campaign) plus a few bytes of a frame.
  config.journal_path = dir + "/campaign.wal";
  run_campaign(config);
  const persist::WalRecovery full = persist::recover_wal(config.journal_path);
  ASSERT_EQ(full.records.size(), 7u);  // meta + 6 scenarios
  std::uint64_t keep_bytes = 8;
  for (std::size_t i = 0; i < 4; ++i) {  // meta + 3 scenarios
    keep_bytes += 20 + full.records[i].payload.size();
  }
  truncate_file(config.journal_path, keep_bytes + 5);  // + torn frame

  config.journal_resume = true;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.campaign_digest, golden.campaign_digest);
  EXPECT_EQ(resumed.executed, 6u);
  std::size_t restored = 0;
  for (const ScenarioOutcome& out : resumed.outcomes) {
    restored += out.restored ? 1 : 0;
  }
  EXPECT_EQ(restored, 3u);

  // The resumed run completed the journal: a further resume re-executes
  // nothing and still reproduces the digest.
  const CampaignResult replayed = run_campaign(config);
  EXPECT_EQ(replayed.campaign_digest, golden.campaign_digest);
  for (const ScenarioOutcome& out : replayed.outcomes) {
    EXPECT_TRUE(out.restored);
  }
}

TEST(CampaignJournal, ResumeRejectsConfigurationMismatch) {
  const std::string dir = scratch_dir("cj_meta");
  CampaignConfig config = quick_config();
  config.journal_path = dir + "/campaign.wal";
  run_campaign(config);

  config.journal_resume = true;
  config.seed = 72;  // different generator stream
  EXPECT_THROW(run_campaign(config), Error);
}

TEST(CampaignJournal, ResumeRejectsCorpusDirMismatch) {
  // The corpus directory is part of the campaign fingerprint: resuming
  // with a different --corpus-dir would scatter reproducers somewhere the
  // original campaign never wrote, silently splitting the corpus.
  const std::string dir = scratch_dir("cj_corpus");
  CampaignConfig config = quick_config();
  config.journal_path = dir + "/campaign.wal";
  config.corpus_dir = dir + "/corpus_a";
  run_campaign(config);

  config.journal_resume = true;
  config.corpus_dir = dir + "/corpus_b";
  EXPECT_THROW(run_campaign(config), Error);
}

TEST(CampaignJournal, MismatchErrorExplainsBothCampaignsAndTheFix) {
  // The operator-facing error must say whose journal it is, what this
  // invocation asked for, and how to proceed — not just "mismatch".
  const std::string dir = scratch_dir("cj_message");
  CampaignConfig config = quick_config();
  config.journal_path = dir + "/campaign.wal";
  run_campaign(config);

  config.journal_resume = true;
  config.seed = 72;
  try {
    run_campaign(config);
    FAIL() << "expected a campaign mismatch error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("belongs to a different campaign"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("seed=71"), std::string::npos) << what;
    EXPECT_NE(what.find("seed=72"), std::string::npos) << what;
    EXPECT_NE(what.find(config.journal_path), std::string::npos) << what;
    EXPECT_NE(what.find("without --resume"), std::string::npos) << what;
  }
}

TEST(CampaignJournal, ResumeRejectsForeignLog) {
  const std::string dir = scratch_dir("cj_foreign");
  CampaignConfig config = quick_config();
  config.journal_path = dir + "/campaign.wal";
  config.journal_resume = true;
  // A WAL whose first record is not a campaign meta record.
  persist::WalWriter writer = persist::WalWriter::create(config.journal_path);
  writer.append(1, "not a meta record");
  writer.sync();
  EXPECT_THROW(run_campaign(config), Error);
}

TEST(CampaignJournal, ResumeWithMissingJournalStartsFresh) {
  const std::string dir = scratch_dir("cj_fresh");
  CampaignConfig config = quick_config();
  const CampaignResult golden = run_campaign(config);
  config.journal_path = dir + "/never-written.wal";
  config.journal_resume = true;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.campaign_digest, golden.campaign_digest);
  EXPECT_EQ(result.executed, 6u);
}

}  // namespace
}  // namespace topil::scenario
