#include "persist/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "file_test_util.hpp"

namespace topil::persist {
namespace {

namespace fs = std::filesystem;
using test::read_file;
using test::scratch_dir;

std::size_t entries_in(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++n;
  }
  return n;
}

TEST(AtomicFile, WriteCreatesFileWithContent) {
  const std::string dir = scratch_dir("atomic_create");
  const std::string path = dir + "/out.bin";
  atomic_write(path, [](std::ostream& out) { out << "payload"; });
  EXPECT_EQ(read_file(path), "payload");
  // The temp file is gone: only the destination remains.
  EXPECT_EQ(entries_in(dir), 1u);
}

TEST(AtomicFile, WriteReplacesExistingFile) {
  const std::string dir = scratch_dir("atomic_replace");
  const std::string path = dir + "/out.bin";
  atomic_write(path, [](std::ostream& out) { out << "old old old"; });
  atomic_write(path, [](std::ostream& out) { out << "new"; });
  EXPECT_EQ(read_file(path), "new");
}

TEST(AtomicFile, AbandonedWriterLeavesDestinationUntouched) {
  const std::string dir = scratch_dir("atomic_abandon");
  const std::string path = dir + "/out.bin";
  atomic_write(path, [](std::ostream& out) { out << "intact"; });
  {
    AtomicFileWriter writer(path);
    writer.stream() << "half-writ";
    // No commit(): destructor must discard the temp file.
  }
  EXPECT_EQ(read_file(path), "intact");
  EXPECT_EQ(entries_in(dir), 1u);
}

TEST(AtomicFile, TempFileLivesInSameDirectory) {
  const std::string dir = scratch_dir("atomic_tmpdir");
  const std::string path = dir + "/out.bin";
  AtomicFileWriter writer(path);
  EXPECT_EQ(fs::path(writer.temp_path()).parent_path(),
            fs::path(path).parent_path());
  writer.stream() << "x";
  writer.commit();
  EXPECT_EQ(read_file(path), "x");
}

TEST(AtomicFile, MissingParentDirectoryThrows) {
  const std::string dir = scratch_dir("atomic_nodir");
  EXPECT_THROW(atomic_write(dir + "/no/such/dir/out.bin",
                            [](std::ostream& out) { out << "x"; }),
               Error);
}

TEST(AtomicFile, FsyncMissingFileThrows) {
  EXPECT_THROW(fsync_file("/nonexistent/path/file.bin"), Error);
}

}  // namespace
}  // namespace topil::persist
