#include "persist/training_wal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/dagger.hpp"
#include "core/training.hpp"
#include "file_test_util.hpp"

namespace topil::persist {
namespace {

using test::scratch_dir;

il::TrainingExample example(float base) {
  il::TrainingExample ex;
  ex.features = {base, base + 1.0f, base + 2.0f};
  ex.labels = {base * 10.0f, base * 20.0f};
  return ex;
}

nn::Mlp tiny_model(std::uint64_t seed) {
  nn::Topology topo;
  topo.inputs = 3;
  topo.outputs = 2;
  topo.hidden = {4};
  nn::Mlp model(topo);
  model.init(seed);
  return model;
}

TEST(TrainingWal, AppendAndRecoverRoundTrip) {
  const std::string dir = scratch_dir("twal_roundtrip");
  const std::string path = dir + "/train.wal";
  const nn::Mlp model = tiny_model(1);
  {
    TrainingWal wal = TrainingWal::create(path, "meta-v1", 3, 2);
    wal.append_examples({example(1.0f), example(2.0f)});
    wal.append_model(model);
    wal.append_iteration_end({0, 2, 2, 0.5});
    wal.append_examples({example(3.0f)});
    wal.append_model(model);
    wal.append_iteration_end({1, 1, 3, 0.25});
  }
  const TrainingRecovery rec = recover_training_wal(path, "meta-v1", 3, 2);
  EXPECT_EQ(rec.iterations_completed, 2u);
  ASSERT_EQ(rec.iterations.size(), 2u);
  EXPECT_EQ(rec.iterations[1].new_examples, 1u);
  EXPECT_EQ(rec.iterations[1].total_examples, 3u);
  EXPECT_DOUBLE_EQ(rec.iterations[1].validation_loss, 0.25);
  ASSERT_EQ(rec.dataset.size(), 3u);
  EXPECT_EQ(rec.dataset.at(2).features, example(3.0f).features);
  EXPECT_EQ(rec.dataset.at(2).labels, example(3.0f).labels);
  ASSERT_TRUE(rec.model_topology.has_value());
  EXPECT_EQ(rec.model_weights, model.save_weights());
  EXPECT_FALSE(rec.truncated_tail);
}

TEST(TrainingWal, TornIterationIsDiscarded) {
  const std::string dir = scratch_dir("twal_torn");
  const std::string path = dir + "/train.wal";
  {
    TrainingWal wal = TrainingWal::create(path, "meta-v1", 3, 2);
    wal.append_examples({example(1.0f)});
    wal.append_model(tiny_model(1));
    wal.append_iteration_end({0, 1, 1, 0.5});
    // Iteration 1 never reaches its commit point: examples and model
    // land in the log but no iteration-end frame follows.
    wal.append_examples({example(9.0f), example(10.0f)});
    wal.append_model(tiny_model(2));
  }
  const TrainingRecovery rec = recover_training_wal(path, "meta-v1", 3, 2);
  EXPECT_EQ(rec.iterations_completed, 1u);
  EXPECT_EQ(rec.dataset.size(), 1u);  // torn iteration's examples dropped
  EXPECT_EQ(rec.model_weights, tiny_model(1).save_weights());
}

TEST(TrainingWal, ResumeRejectsMetaMismatch) {
  const std::string dir = scratch_dir("twal_meta");
  const std::string path = dir + "/train.wal";
  { TrainingWal::create(path, "meta-v1", 3, 2); }
  EXPECT_THROW(recover_training_wal(path, "meta-v2", 3, 2), Error);
  EXPECT_THROW(TrainingWal::resume(path, "meta-v2", 3, 2), Error);
}

TEST(TrainingWal, ResumeRejectsShapeMismatch) {
  const std::string dir = scratch_dir("twal_shape");
  const std::string path = dir + "/train.wal";
  { TrainingWal::create(path, "meta-v1", 3, 2); }
  EXPECT_THROW(recover_training_wal(path, "meta-v1", 4, 2), Error);
  EXPECT_THROW(recover_training_wal(path, "meta-v1", 3, 1), Error);
}

TEST(TrainingWal, ResumeOnMissingFileStartsFresh) {
  const std::string dir = scratch_dir("twal_fresh");
  const std::string path = dir + "/train.wal";
  TrainingRecovery rec;
  TrainingWal wal = TrainingWal::resume(path, "meta-v1", 3, 2, &rec);
  EXPECT_EQ(rec.iterations_completed, 0u);
  wal.append_examples({example(1.0f)});
  wal.append_iteration_end({0, 1, 1, 0.5});
  EXPECT_EQ(recover_training_wal(path, "meta-v1", 3, 2).dataset.size(), 1u);
}

// --- DAgger crash-resume bit-identity -----------------------------------

il::DaggerConfig tiny_dagger() {
  il::DaggerConfig config;
  config.iterations = 2;
  config.rollouts_per_iteration = 1;
  config.rollout_duration_s = 40.0;
  config.workload_apps = 3;
  config.arrival_rate_per_s = 0.2;
  config.training.hidden = {8};
  config.training.trainer.max_epochs = 4;
  config.training.trainer.patience = 4;
  config.seed = 5;
  config.jobs = 1;
  return config;
}

TEST(TrainingWal, DaggerResumeAfterTornIterationIsBitIdentical) {
  const std::string dir = scratch_dir("twal_dagger");
  const il::DaggerTrainer trainer(hikey970_platform(), CoolingConfig::fan());

  // Reference: an uninterrupted two-iteration run, logged to WAL A.
  il::DaggerConfig config = tiny_dagger();
  config.wal_path = dir + "/a.wal";
  const il::DaggerResult golden = trainer.run(config);

  // Emulate a crash mid-iteration-1: rebuild WAL B from WAL A's frames,
  // keeping everything up to (and including) iteration 0's commit point
  // plus iteration 1's uncommitted examples.
  const WalRecovery a = recover_wal(dir + "/a.wal");
  std::size_t first_iteration_end = a.records.size();
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].type == kTrainingWalIterationEnd) {
      first_iteration_end = i;
      break;
    }
  }
  ASSERT_LT(first_iteration_end, a.records.size());
  WalWriter b = WalWriter::create(dir + "/b.wal");
  for (std::size_t i = 0; i <= first_iteration_end + 1; ++i) {
    b.append(a.records[i].type, a.records[i].payload);
  }
  b.sync();

  // Resume from WAL B: iteration 0 replays, iteration 1 is redone.
  config.wal_path = dir + "/b.wal";
  config.wal_resume = true;
  const il::DaggerResult resumed = trainer.run(config);

  EXPECT_EQ(resumed.model.save_weights(), golden.model.save_weights());
  ASSERT_EQ(resumed.iterations.size(), golden.iterations.size());
  for (std::size_t i = 0; i < golden.iterations.size(); ++i) {
    EXPECT_EQ(resumed.iterations[i].new_examples,
              golden.iterations[i].new_examples);
    EXPECT_EQ(resumed.iterations[i].total_examples,
              golden.iterations[i].total_examples);
    EXPECT_DOUBLE_EQ(resumed.iterations[i].validation_loss,
                     golden.iterations[i].validation_loss);
  }
  // The resumed log is now complete: replaying it yields both iterations.
  const TrainingRecovery final_state = recover_training_wal(
      dir + "/b.wal", il::dagger_wal_meta(config), /*feature_width=*/21,
      /*label_width=*/8);
  EXPECT_EQ(final_state.iterations_completed, 2u);
}

}  // namespace
}  // namespace topil::persist
