#include "persist/snapshot.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/tensor.hpp"

namespace topil::persist {
namespace {

TEST(Snapshot, RngRoundTripContinuesIdentically) {
  Rng original(42);
  for (int i = 0; i < 100; ++i) original.uniform(0.0, 1.0);

  StateWriter out;
  save_rng(out, original);
  Rng restored(7);  // different seed: state must come from the snapshot
  StateReader in(out.buffer());
  restore_rng(in, restored);
  in.require_done();

  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(original.uniform(0.0, 1.0), restored.uniform(0.0, 1.0)) << i;
  }
}

TEST(Snapshot, CorruptRngStateThrows) {
  StateWriter out;
  out.str("not a number stream $$$");
  Rng rng(1);
  StateReader in(out.buffer());
  EXPECT_THROW(restore_rng(in, rng), Error);
}

TEST(Snapshot, MatrixRoundTrip) {
  nn::Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.25f;
  }
  StateWriter out;
  save_matrix(out, m);
  StateReader in(out.buffer());
  const nn::Matrix back = restore_matrix(in);
  in.require_done();
  ASSERT_EQ(back.rows(), 3u);
  ASSERT_EQ(back.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back.data()[i], m.data()[i]);
  }
}

TEST(Snapshot, ImplausibleMatrixDimsThrow) {
  // A corrupt dimension pair claiming more floats than bytes remain must
  // be rejected before allocation.
  StateWriter out;
  out.u64(1ull << 32);
  out.u64(1ull << 32);
  StateReader in(out.buffer());
  EXPECT_THROW(restore_matrix(in), Error);
}

TEST(Snapshot, RunningStatsRoundTrip) {
  RunningStats stats;
  for (double x : {1.0, 2.5, -3.0, 7.25}) stats.add(x);
  StateWriter out;
  SnapshotAccess::save(out, stats);
  RunningStats back;
  StateReader in(out.buffer());
  SnapshotAccess::restore(in, back);
  in.require_done();
  EXPECT_EQ(back.count(), stats.count());
  EXPECT_EQ(back.mean(), stats.mean());
  EXPECT_EQ(back.variance(), stats.variance());
  EXPECT_EQ(back.min(), stats.min());
  EXPECT_EQ(back.max(), stats.max());
  back.add(10.0);
  stats.add(10.0);
  EXPECT_EQ(back.mean(), stats.mean());  // continues identically
}

TEST(Snapshot, AppSpecRoundTrip) {
  const AppSpec& app = AppDatabase::instance().by_name("swaptions");
  StateWriter out;
  save_app_spec(out, app);
  StateReader in(out.buffer());
  const AppSpec back = restore_app_spec(in);
  in.require_done();
  EXPECT_EQ(back.name, app.name);
  EXPECT_EQ(back.used_for_training, app.used_for_training);
  ASSERT_EQ(back.num_phases(), app.num_phases());
  EXPECT_EQ(back.total_instructions(), app.total_instructions());
  for (std::size_t i = 0; i < app.num_phases(); ++i) {
    EXPECT_EQ(back.phase(i).name, app.phase(i).name);
    EXPECT_EQ(back.phase(i).instructions, app.phase(i).instructions);
  }
}

}  // namespace
}  // namespace topil::persist
