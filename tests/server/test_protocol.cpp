#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "server/protocol.hpp"

// Corruption-injection sweeps over the wire protocol, mirroring the
// persisted-format sweeps in tests/persist/test_corruption.cpp: every
// truncation point, every single-bit flip of the whole frame, oversized
// lengths, trailing garbage, and interleaved partial delivery. The oracle:
// a corrupted byte stream must either raise a clean error or yield no
// frame — it may never silently produce a (wrong) message. Run under
// ASan/UBSan by the CI server gate.
namespace topil::server {
namespace {

std::string flip(std::string bytes, std::size_t byte, unsigned bit) {
  bytes[byte] = static_cast<char>(static_cast<unsigned char>(bytes[byte]) ^
                                  (1u << bit));
  return bytes;
}

ActionMsg sample_action_msg() {
  ActionMsg m;
  m.device_id = 7;
  m.seq = 3;
  m.tick = 150;
  m.sim_time_s = 1.5;
  m.sent_ns = 123456789;
  m.vf_levels = {2, 5};
  m.placements = {{1, 0}, {2, 6}};
  return m;
}

std::string sample_frame() {
  return encode_frame(MsgType::kAction, encode_action(sample_action_msg()));
}

/// Feed `bytes` to a fresh reader; returns the decoded frames, or nullopt
/// if decoding raised.
std::optional<std::vector<Frame>> decode_all(const std::string& bytes) {
  FrameReader reader;
  std::vector<Frame> frames;
  try {
    reader.feed(bytes);
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  } catch (const Error&) {
    return std::nullopt;
  }
  return frames;
}

TEST(Protocol, RoundTripsEveryMessageType) {
  const RegisterMsg reg{42, "scenario text\nwith lines\n"};
  const RegisterMsg reg2 = decode_register(encode_register(reg));
  EXPECT_EQ(reg2.device_id, 42u);
  EXPECT_EQ(reg2.scenario_text, reg.scenario_text);

  const RegisterAckMsg ack2 =
      decode_register_ack(encode_register_ack({42, 3}));
  EXPECT_EQ(ack2.device_id, 42u);
  EXPECT_EQ(ack2.shard, 3u);

  const ActionMsg a = sample_action_msg();
  const ActionMsg a2 = decode_action(encode_action(a));
  EXPECT_EQ(a2.device_id, a.device_id);
  EXPECT_EQ(a2.seq, a.seq);
  EXPECT_EQ(a2.tick, a.tick);
  EXPECT_EQ(a2.sim_time_s, a.sim_time_s);
  EXPECT_EQ(a2.sent_ns, a.sent_ns);
  EXPECT_EQ(a2.vf_levels, a.vf_levels);
  ASSERT_EQ(a2.placements.size(), a.placements.size());
  EXPECT_EQ(a2.placements[1].pid, a.placements[1].pid);
  EXPECT_EQ(a2.placements[1].core, a.placements[1].core);

  const RetireMsg r2 = decode_retire(encode_retire({9, 111, 222, 333, 444}));
  EXPECT_EQ(r2.device_id, 9u);
  EXPECT_EQ(r2.digest, 111u);
  EXPECT_EQ(r2.action_digest, 444u);

  EXPECT_EQ(decode_deregister(encode_deregister({5})).device_id, 5u);
  decode_stats_request(encode_stats_request());  // no payload, must not throw

  StatsReplyMsg s;
  s.devices_registered = 10;
  s.invariant_violations = 2;
  const StatsReplyMsg s2 = decode_stats_reply(encode_stats_reply(s));
  EXPECT_EQ(s2.devices_registered, 10u);
  EXPECT_EQ(s2.invariant_violations, 2u);

  const ErrorMsg e2 = decode_error(encode_error({1, "went wrong"}));
  EXPECT_EQ(e2.device_id, 1u);
  EXPECT_EQ(e2.message, "went wrong");
}

TEST(Protocol, PristineFrameDecodes) {
  const auto frames = decode_all(sample_frame());
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  EXPECT_EQ((*frames)[0].type, MsgType::kAction);
  const ActionMsg m = decode_action((*frames)[0].payload);
  EXPECT_EQ(m.device_id, 7u);
}

TEST(ProtocolFuzz, EveryTruncationYieldsNoFrame) {
  const std::string full = sample_frame();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto frames = decode_all(full.substr(0, len));
    if (frames.has_value()) {
      EXPECT_TRUE(frames->empty()) << "truncated to " << len;
    }
    // else: threw cleanly — also acceptable (corrupt header prefix).
  }
}

TEST(ProtocolFuzz, EveryBitFlipYieldsNoFrame) {
  const std::string full = sample_frame();
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      const auto frames = decode_all(flip(full, byte, bit));
      if (frames.has_value()) {
        EXPECT_TRUE(frames->empty())
            << "flip byte " << byte << " bit " << bit
            << " produced a frame";
      }
    }
  }
}

TEST(ProtocolFuzz, OversizedLengthIsRejectedBeforeBuffering) {
  // A length beyond kMaxFramePayload must throw on the spot — the reader
  // may not wait for (or try to allocate) gigabytes of payload.
  std::string header(kFrameHeaderBytes, '\0');
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header.data(), &huge, sizeof(huge));
  const std::uint16_t type = static_cast<std::uint16_t>(MsgType::kAction);
  std::memcpy(header.data() + 4, &type, sizeof(type));
  FrameReader reader;
  reader.feed(header);
  EXPECT_THROW(reader.next(), Error);
}

TEST(ProtocolFuzz, UnknownTypeIsRejectedFromHeaderAlone) {
  std::string header(kFrameHeaderBytes, '\0');
  const std::uint32_t len = 0;
  std::memcpy(header.data(), &len, sizeof(len));
  const std::uint16_t type = 999;
  std::memcpy(header.data() + 4, &type, sizeof(type));
  FrameReader reader;
  reader.feed(header);
  EXPECT_THROW(reader.next(), Error);
}

TEST(ProtocolFuzz, TrailingGarbageAfterValidFrameDoesNotCorruptIt) {
  const std::string full = sample_frame();
  // 'Z' repeated makes an implausible length field, so the reader throws
  // once it looks at the garbage "header" — after handing out the intact
  // first frame.
  FrameReader reader;
  reader.feed(full + std::string(16, 'Z'));
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kAction);
  EXPECT_THROW(reader.next(), Error);
}

TEST(ProtocolFuzz, InterleavedPartialFramesDecodeExactlyAtCompletion) {
  const std::string f1 = sample_frame();
  const std::string f2 =
      encode_frame(MsgType::kRetire, encode_retire({1, 2, 3, 4, 5}));
  const std::string both = f1 + f2;

  FrameReader reader;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < both.size(); ++i) {
    reader.feed(both.substr(i, 1));
    while (auto f = reader.next()) frames.push_back(std::move(*f));
    // Frames must materialize exactly when their last byte arrives.
    const std::size_t expect =
        (i + 1 >= f1.size() ? 1u : 0u) + (i + 1 >= both.size() ? 1u : 0u);
    EXPECT_EQ(frames.size(), expect) << "after byte " << i;
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kAction);
  EXPECT_EQ(frames[1].type, MsgType::kRetire);
  EXPECT_EQ(decode_retire(frames[1].payload).action_digest, 5u);
  EXPECT_EQ(reader.buffered(), 0u);
}

/// Message-payload sweep: every truncation and every trailing byte of the
/// codec payloads must throw (bounds checks + require_done), mirroring
/// the persist StateReader contract.
template <typename DecodeFn>
void sweep_payload(const std::string& payload, const DecodeFn& decode) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode(payload.substr(0, len)), Error)
        << "truncated to " << len;
  }
  EXPECT_THROW(decode(payload + 'Z'), Error) << "trailing garbage";
  decode(payload);  // pristine payload still decodes
}

TEST(ProtocolFuzz, MessageCodecsRejectTruncationAndTrailingGarbage) {
  sweep_payload(encode_register({42, "spec"}),
                [](std::string_view p) { decode_register(p); });
  sweep_payload(encode_register_ack({42, 3}),
                [](std::string_view p) { decode_register_ack(p); });
  sweep_payload(encode_action(sample_action_msg()),
                [](std::string_view p) { decode_action(p); });
  sweep_payload(encode_retire({9, 1, 2, 3, 4}),
                [](std::string_view p) { decode_retire(p); });
  sweep_payload(encode_deregister({5}),
                [](std::string_view p) { decode_deregister(p); });
  sweep_payload(encode_stats_reply({}),
                [](std::string_view p) { decode_stats_reply(p); });
  sweep_payload(encode_error({1, "m"}),
                [](std::string_view p) { decode_error(p); });
}

TEST(ProtocolFuzz, ActionCountsAreBoundedByPayloadSize) {
  // A corrupt vf_levels/placements count must be rejected against the
  // bytes actually remaining, never honored with a giant allocation.
  ActionMsg m = sample_action_msg();
  std::string payload = encode_action(m);
  // vf_levels count is a u64 right after tag + 4 u64 + 1 f64; stomp it.
  const std::size_t count_offset = 4 + 8 * 4 + 8;
  ASSERT_LT(count_offset + 8, payload.size());
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(payload.data() + count_offset, &huge, sizeof(huge));
  EXPECT_THROW(decode_action(payload), Error);
}

TEST(Protocol, FoldActionIgnoresSentNsOnly) {
  const ActionMsg a = sample_action_msg();
  ActionMsg b = a;
  b.sent_ns = 0;  // wall-clock stamp must not affect the digest
  validate::Fnv64 da, db;
  fold_action(da, a);
  fold_action(db, b);
  EXPECT_EQ(da.value(), db.value());

  ActionMsg c = a;
  c.placements[1].core = 3;  // any decision field must affect it
  validate::Fnv64 dc;
  fold_action(dc, c);
  EXPECT_NE(da.value(), dc.value());
}

}  // namespace
}  // namespace topil::server
