#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

// Durability tests: a server stopped mid-fleet (checkpoint + WAL on disk)
// and rebuilt with resume=true must finish every device with digests
// bit-identical to an uninterrupted run. The in-process stop() models the
// orderly half of the crash story; the kill -9 half is exercised by the
// ci_check.sh server gate on the topil_serve binary (same Shard code
// paths: WAL replay + checkpoint restore).
namespace topil::server {
namespace {

constexpr std::uint64_t kSeed = 321;
constexpr std::uint64_t kPolicySeed = 5;
constexpr std::size_t kEpochTicks = 25;

DeviceScenarioOptions device_opts() {
  DeviceScenarioOptions opts;
  opts.max_duration_s = 8.0;
  opts.num_apps = 2;
  opts.instruction_scale = 1.5;  // busy until the duration cap
  return opts;
}

ServerConfig durable_config(const std::string& dir) {
  ServerConfig sc;
  sc.nshards = 2;
  sc.policy_seed = kPolicySeed;
  sc.epoch_ticks = kEpochTicks;
  sc.state_dir = dir;
  sc.checkpoint_every_ticks = 10;
  return sc;
}

std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("topil_server_resume_" + name +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::map<std::uint64_t, DeviceRunSummary> reference_digests(
    const std::vector<std::uint64_t>& ids) {
  std::map<std::uint64_t, DeviceRunSummary> out;
  for (const std::uint64_t id : ids) {
    out[id] = run_reference_device(make_device_scenario(kSeed, id,
                                                        device_opts()),
                                   id, kPolicySeed, kEpochTicks);
  }
  return out;
}

/// Start a durable server, register `ids`, stop mid-run after the first
/// actions arrive (devices still live), leaving WAL + checkpoints behind.
void run_and_interrupt(const std::string& dir,
                       const std::vector<std::uint64_t>& ids) {
  GovernorServer server(durable_config(dir));
  server.start();
  ServiceClient client(server.connect_local());
  for (const std::uint64_t id : ids) {
    client.register_device(
        id, make_device_scenario(kSeed, id, device_opts()).serialize());
  }
  std::size_t actions = 0;
  std::vector<ClientEvent> events;
  while (actions < ids.size()) {  // every shard demonstrably mid-run
    events.clear();
    ASSERT_GT(client.poll_wait(events, 30'000), 0u);
    for (const ClientEvent& ev : events) {
      ASSERT_NE(ev.type, MsgType::kError) << ev.error.message;
      if (ev.type == MsgType::kAction) ++actions;
    }
  }
  server.stop();  // final checkpoint at a step boundary
  ASSERT_GT(server.stats().devices_live, 0u)
      << "stop landed after completion; nothing left to resume";
}

TEST(ServerResume, ResumedFleetMatchesUninterruptedDigests) {
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4};
  const std::string dir = scratch_dir("midrun");
  run_and_interrupt(dir, ids);

  // Rebuild from disk; devices continue headless to retirement.
  ServerConfig rc = durable_config(dir);
  rc.resume = true;
  GovernorServer resumed(rc);
  resumed.start();
  resumed.wait_drained();
  resumed.stop();
  EXPECT_EQ(resumed.stats().devices_live, 0u);

  const auto retired = read_retired_devices(dir, rc.nshards);
  const auto ref = reference_digests(ids);
  ASSERT_EQ(retired.size(), ids.size());
  for (const RetireMsg& m : retired) {
    const DeviceRunSummary& r = ref.at(m.device_id);
    EXPECT_EQ(m.digest, r.digest) << "device " << m.device_id;
    EXPECT_EQ(m.ticks, r.ticks) << "device " << m.device_id;
    EXPECT_EQ(m.actions, r.actions) << "device " << m.device_id;
    EXPECT_EQ(m.action_digest, r.action_digest)
        << "device " << m.device_id;
  }
  std::filesystem::remove_all(dir);
}

TEST(ServerResume, WalReplayAloneRestartsDevicesBitIdentically) {
  // Delete the checkpoints: resume must fall back to replaying the WAL
  // membership and restarting every live device from tick zero — slower,
  // but the final digests are the same (determinism from the spec alone).
  const std::vector<std::uint64_t> ids = {0, 1, 2};
  const std::string dir = scratch_dir("walonly");
  run_and_interrupt(dir, ids);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      std::filesystem::remove(entry.path());
    }
  }

  ServerConfig rc = durable_config(dir);
  rc.resume = true;
  GovernorServer resumed(rc);
  resumed.start();
  resumed.wait_drained();
  resumed.stop();

  const auto retired = read_retired_devices(dir, rc.nshards);
  const auto ref = reference_digests(ids);
  ASSERT_EQ(retired.size(), ids.size());
  for (const RetireMsg& m : retired) {
    EXPECT_EQ(m.digest, ref.at(m.device_id).digest)
        << "device " << m.device_id;
    EXPECT_EQ(m.action_digest, ref.at(m.device_id).action_digest)
        << "device " << m.device_id;
  }
  std::filesystem::remove_all(dir);
}

TEST(ServerResume, ResumeUnderValidationReportsNoViolations) {
  // Restoring a checkpoint jumps the thermal state mid-run; the invariant
  // checker must be re-primed against the restored state, or its
  // energy-balance baseline books the jump as a phantom stored-energy
  // change and every subsequent tick violates the cumulative balance.
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3};
  const std::string dir = scratch_dir("validate");
  {
    ServerConfig sc = durable_config(dir);
    sc.validate = true;
    GovernorServer server(sc);
    server.start();
    ServiceClient client(server.connect_local());
    for (const std::uint64_t id : ids) {
      client.register_device(
          id, make_device_scenario(kSeed, id, device_opts()).serialize());
    }
    std::size_t actions = 0;
    std::vector<ClientEvent> events;
    while (actions < ids.size()) {
      events.clear();
      ASSERT_GT(client.poll_wait(events, 30'000), 0u);
      for (const ClientEvent& ev : events) {
        ASSERT_NE(ev.type, MsgType::kError) << ev.error.message;
        if (ev.type == MsgType::kAction) ++actions;
      }
    }
    server.stop();
    ASSERT_GT(server.stats().devices_live, 0u);
  }

  ServerConfig rc = durable_config(dir);
  rc.resume = true;
  rc.validate = true;
  GovernorServer resumed(rc);
  resumed.start();
  resumed.wait_drained();
  resumed.stop();
  EXPECT_EQ(resumed.stats().invariant_violations, 0u);

  const auto retired = read_retired_devices(dir, rc.nshards);
  const auto ref = reference_digests(ids);
  ASSERT_EQ(retired.size(), ids.size());
  for (const RetireMsg& m : retired) {
    EXPECT_EQ(m.digest, ref.at(m.device_id).digest)
        << "device " << m.device_id;
  }
  std::filesystem::remove_all(dir);
}

TEST(ServerResume, RefusesCheckpointFromDifferentConfiguration) {
  const std::vector<std::uint64_t> ids = {0, 1};
  const std::string dir = scratch_dir("meta");
  run_and_interrupt(dir, ids);

  ServerConfig rc = durable_config(dir);
  rc.resume = true;
  rc.epoch_ticks = 50;  // different action cadence => different digests
  EXPECT_THROW(GovernorServer{rc}, Error);
  std::filesystem::remove_all(dir);
}

TEST(ServerResume, RetirementsSurviveAcrossRestarts) {
  // Run a small fleet to completion, then resume the (empty) state dir:
  // nothing is live, and the retired records are still all there.
  const std::vector<std::uint64_t> ids = {0, 1, 2};
  const std::string dir = scratch_dir("complete");
  {
    GovernorServer server(durable_config(dir));
    server.start();
    ServiceClient client(server.connect_local());
    DeviceScenarioOptions opts = device_opts();
    opts.max_duration_s = 1.0;
    for (const std::uint64_t id : ids) {
      client.register_device(
          id, make_device_scenario(kSeed, id, opts).serialize());
    }
    // Let every registration land before the drain check can pass
    // vacuously on still-empty shards.
    std::size_t acks = 0;
    std::vector<ClientEvent> events;
    while (acks < ids.size()) {
      events.clear();
      ASSERT_GT(client.poll_wait(events, 30'000), 0u);
      for (const ClientEvent& ev : events) {
        ASSERT_NE(ev.type, MsgType::kError) << ev.error.message;
        if (ev.type == MsgType::kRegisterAck) ++acks;
      }
    }
    server.wait_drained();
    server.stop();
    EXPECT_EQ(server.stats().devices_retired, ids.size());
  }
  {
    ServerConfig rc = durable_config(dir);
    rc.resume = true;
    GovernorServer resumed(rc);
    resumed.start();
    resumed.wait_drained();
    resumed.stop();
    EXPECT_EQ(resumed.stats().devices_live, 0u);
    EXPECT_EQ(read_retired_devices(dir, rc.nshards).size(), ids.size());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace topil::server
