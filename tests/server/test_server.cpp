#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "npu/inference_backend.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

// End-to-end tests of the governor service over the in-process loopback
// transport: registration/ack/action/retire lifecycle, error replies, and
// the PR's headline contract — a shard serving K tenants through one
// aggregated NPU pass per tick retires every device with digests
// bit-identical to K solo rollouts, across every inference backend.
namespace topil::server {
namespace {

constexpr std::uint64_t kSeed = 99;
constexpr std::uint64_t kPolicySeed = 5;
constexpr std::size_t kEpochTicks = 25;

DeviceScenarioOptions short_device() {
  DeviceScenarioOptions opts;
  opts.max_duration_s = 1.5;
  opts.num_apps = 2;
  return opts;
}

ServerConfig base_config() {
  ServerConfig sc;
  sc.nshards = 2;
  sc.policy_seed = kPolicySeed;
  sc.epoch_ticks = kEpochTicks;
  return sc;
}

/// Register `ids`, run everything to retirement, return retire records.
std::map<std::uint64_t, RetireMsg> serve_devices(
    GovernorServer& server, const std::vector<std::uint64_t>& ids) {
  server.start();
  ServiceClient client(server.connect_local());
  for (const std::uint64_t id : ids) {
    client.register_device(
        id, make_device_scenario(kSeed, id, short_device()).serialize());
  }
  std::map<std::uint64_t, RetireMsg> retired;
  std::size_t acks = 0;
  std::vector<ClientEvent> events;
  while (retired.size() < ids.size()) {
    events.clear();
    if (client.poll_wait(events, 30'000) == 0) break;
    for (const ClientEvent& ev : events) {
      if (ev.type == MsgType::kRegisterAck) {
        ++acks;
      } else if (ev.type == MsgType::kRetire) {
        retired[ev.retire.device_id] = ev.retire;
      } else if (ev.type == MsgType::kAction) {
        EXPECT_GT(ev.recv_ns, ev.action.sent_ns);
      } else if (ev.type == MsgType::kError) {
        ADD_FAILURE() << "server error: " << ev.error.message;
      }
    }
  }
  EXPECT_EQ(acks, ids.size());
  server.wait_drained();
  server.stop();
  return retired;
}

void expect_matches_reference(
    const std::map<std::uint64_t, RetireMsg>& retired,
    const std::vector<std::uint64_t>& ids) {
  ASSERT_EQ(retired.size(), ids.size());
  for (const std::uint64_t id : ids) {
    const auto spec = make_device_scenario(kSeed, id, short_device());
    const DeviceRunSummary ref =
        run_reference_device(spec, id, kPolicySeed, kEpochTicks);
    const RetireMsg& got = retired.at(id);
    EXPECT_EQ(got.digest, ref.digest) << "device " << id;
    EXPECT_EQ(got.ticks, ref.ticks) << "device " << id;
    EXPECT_EQ(got.actions, ref.actions) << "device " << id;
    EXPECT_EQ(got.action_digest, ref.action_digest) << "device " << id;
    EXPECT_GT(got.actions, 0u) << "device " << id;
  }
}

TEST(GovernorService, CrossTenantBatchingIsBitIdenticalToSoloRollouts) {
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4, 5};
  GovernorServer server(base_config());
  const auto retired = serve_devices(server, ids);
  expect_matches_reference(retired, ids);
  // The shard really did aggregate: fewer device calls than rows.
  const StatsReplyMsg stats = server.stats();
  EXPECT_GT(stats.npu_rows, 0u);
  EXPECT_GT(stats.npu_rows, stats.npu_device_calls);
}

TEST(GovernorService, BitIdentityHoldsAcrossInferenceBackends) {
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3};
  for (const npu::BackendKind kind :
       {npu::BackendKind::Npu, npu::BackendKind::CpuSimd,
        npu::BackendKind::Auto}) {
    SCOPED_TRACE(npu::backend_kind_name(kind));
    npu::ScopedBackend scoped(kind);
    GovernorServer server(base_config());
    expect_matches_reference(serve_devices(server, ids), ids);
  }
}

TEST(GovernorService, ShardCountDoesNotChangeDigests) {
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4};
  ServerConfig one = base_config();
  one.nshards = 1;
  GovernorServer s1(one);
  const auto r1 = serve_devices(s1, ids);
  ServerConfig four = base_config();
  four.nshards = 4;
  GovernorServer s4(four);
  const auto r4 = serve_devices(s4, ids);
  ASSERT_EQ(r1.size(), r4.size());
  for (const auto& [id, m] : r1) {
    EXPECT_EQ(m.digest, r4.at(id).digest) << "device " << id;
    EXPECT_EQ(m.action_digest, r4.at(id).action_digest) << "device " << id;
  }
}

TEST(GovernorService, RejectsDuplicateAndMalformedRegistrations) {
  GovernorServer server(base_config());
  server.start();
  ServiceClient client(server.connect_local());

  client.register_device(7, "not a scenario at all");
  std::vector<ClientEvent> events;
  ASSERT_GT(client.poll_wait(events, 30'000), 0u);
  ASSERT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.device_id, 7u);

  const std::string spec =
      make_device_scenario(kSeed, 8, short_device()).serialize();
  client.register_device(8, spec);
  client.register_device(8, spec);  // duplicate id
  bool saw_ack = false, saw_dup_error = false;
  while (!saw_ack || !saw_dup_error) {
    events.clear();
    ASSERT_GT(client.poll_wait(events, 30'000), 0u);
    for (const ClientEvent& ev : events) {
      if (ev.type == MsgType::kRegisterAck && ev.ack.device_id == 8) {
        saw_ack = true;
      }
      if (ev.type == MsgType::kError && ev.error.device_id == 8) {
        EXPECT_NE(ev.error.message.find("already registered"),
                  std::string::npos);
        saw_dup_error = true;
      }
    }
  }
  server.wait_drained();
  server.stop();
}

TEST(GovernorService, DeregisterRemovesADeviceMidRun) {
  GovernorServer server(base_config());
  server.start();
  ServiceClient client(server.connect_local());
  DeviceScenarioOptions opts = short_device();
  opts.max_duration_s = 30.0;  // would run far longer than the test
  opts.instruction_scale = 2.0;
  client.register_device(3, make_device_scenario(kSeed, 3, opts).serialize());

  // Wait for proof of life (an action), then deregister.
  bool acting = false;
  std::vector<ClientEvent> events;
  while (!acting) {
    events.clear();
    ASSERT_GT(client.poll_wait(events, 30'000), 0u);
    for (const ClientEvent& ev : events) {
      acting = acting || ev.type == MsgType::kAction;
    }
  }
  client.deregister_device(3);
  server.wait_drained();  // returns only because deregistration lands
  server.stop();
  EXPECT_EQ(server.stats().devices_live, 0u);
  EXPECT_EQ(server.stats().devices_retired, 0u);
}

TEST(GovernorService, StatsRequestReportsCounters) {
  GovernorServer server(base_config());
  const std::vector<std::uint64_t> ids = {0, 1};
  const auto retired = serve_devices(server, ids);
  ASSERT_EQ(retired.size(), 2u);
  // serve_devices stopped the server; counters remain queryable in-process.
  const StatsReplyMsg s = server.stats();
  EXPECT_EQ(s.devices_registered, 2u);
  EXPECT_EQ(s.devices_retired, 2u);
  EXPECT_EQ(s.devices_live, 0u);
  EXPECT_GT(s.actions_sent, 0u);
  EXPECT_GT(s.fleet_ticks, 0u);
  EXPECT_EQ(s.invariant_violations, 0u);
}

TEST(GovernorService, StatsRequestOverTheWire) {
  GovernorServer server(base_config());
  server.start();
  ServiceClient client(server.connect_local());
  client.request_stats();
  std::vector<ClientEvent> events;
  ASSERT_GT(client.poll_wait(events, 30'000), 0u);
  ASSERT_EQ(events[0].type, MsgType::kStatsReply);
  EXPECT_EQ(events[0].stats.devices_registered, 0u);
  server.stop();
}

TEST(GovernorService, MalformedFrameKillsOnlyThatConnection) {
  GovernorServer server(base_config());
  server.start();

  // Victim connection sends garbage bytes.
  auto bad = server.connect_local();
  bad->write(std::string(32, 'Z'));

  // A healthy connection keeps working end to end.
  GovernorServer* srv = &server;
  ServiceClient good(srv->connect_local());
  const std::vector<std::uint64_t> ids = {0};
  good.register_device(
      0, make_device_scenario(kSeed, 0, short_device()).serialize());
  bool retired = false;
  std::vector<ClientEvent> events;
  while (!retired) {
    events.clear();
    ASSERT_GT(good.poll_wait(events, 30'000), 0u);
    for (const ClientEvent& ev : events) {
      retired = retired || ev.type == MsgType::kRetire;
    }
  }
  server.wait_drained();
  server.stop();
  EXPECT_EQ(server.stats().devices_retired, 1u);
}

TEST(GovernorService, ValidateModeCountsNoViolationsOnHealthyFleet) {
  ServerConfig sc = base_config();
  sc.validate = true;
  GovernorServer server(sc);
  const std::vector<std::uint64_t> ids = {0, 1, 2};
  const auto retired = serve_devices(server, ids);
  EXPECT_EQ(retired.size(), 3u);
  EXPECT_EQ(server.stats().invariant_violations, 0u);
  // Validation must not perturb the simulation (monitors observe only).
  expect_matches_reference(retired, ids);
}

}  // namespace
}  // namespace topil::server
