#include "scenario/differential.hpp"

#include <gtest/gtest.h>

#include "scenario/generator.hpp"

namespace topil::scenario {
namespace {

ScenarioSpec quick_scenario(std::uint64_t index = 0) {
  GeneratorConfig config;
  config.min_runtime_s = 1.0;
  config.max_runtime_s = 2.0;
  config.max_apps = 2;
  return generate_scenario(5, index, config);
}

TEST(Differential, NominalScenarioHasNoFindings) {
  const DifferentialResult r = run_differential(quick_scenario());
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.detail;
  }
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.ticks, 0u);
  EXPECT_NE(r.digest, 0u);
}

TEST(Differential, DigestIsReproducible) {
  const ScenarioSpec spec = quick_scenario(1);
  const DifferentialResult a = run_differential(spec);
  const DifferentialResult b = run_differential(spec);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.ticks, b.ticks);
}

TEST(Differential, ImpossibleToleranceTripsTheIntegratorOracle) {
  // A negative tolerance can never be met (|diff| >= 0), so the
  // integrator-divergence oracle must fire — this validates the failure
  // path end to end without needing a real simulator bug.
  OracleTolerances tol;
  tol.avg_temp_tol_c = -1.0;
  const DifferentialResult r = run_differential(quick_scenario(2), tol);
  ASSERT_FALSE(r.ok());
  bool integrator_finding = false;
  for (const Finding& f : r.findings) {
    integrator_finding |= (f.oracle == "integrator-divergence");
  }
  EXPECT_TRUE(integrator_finding);
}

TEST(Differential, BrokenSpecBecomesCrashFindingNotException) {
  ScenarioSpec spec = quick_scenario(3);
  spec.apps[0].name = "no-such-app";
  const DifferentialResult r = run_differential(spec);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].oracle, "crash");
}

}  // namespace
}  // namespace topil::scenario
