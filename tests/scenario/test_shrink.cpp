#include "scenario/shrink.hpp"

#include <gtest/gtest.h>

#include "scenario/generator.hpp"

namespace topil::scenario {
namespace {

TEST(Shrink, PassingScenarioIsReturnedUntouched) {
  GeneratorConfig gen;
  gen.min_runtime_s = 1.0;
  gen.max_runtime_s = 2.0;
  const ScenarioSpec spec = generate_scenario(41, 0, gen);
  const ShrinkResult r = shrink_scenario(spec);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.runs, 1u);  // one probe, no shrinking
  EXPECT_EQ(r.spec.serialize(), spec.serialize());
}

TEST(Shrink, AlwaysFailingScenarioShrinksToMinimalReproducer) {
  GeneratorConfig gen;
  gen.min_apps = 3;
  gen.max_apps = 3;
  gen.min_runtime_s = 1.0;
  gen.max_runtime_s = 2.0;
  const ScenarioSpec spec = generate_scenario(43, 1, gen);
  ASSERT_EQ(spec.apps.size(), 3u);

  // A negative tolerance fails on every execution, so every reduction
  // step is accepted and the shrinker must drive the spec all the way to
  // its floor: one app, nominal thermal parameters, default governor.
  ShrinkConfig config;
  config.tol.avg_temp_tol_c = -1.0;
  const ShrinkResult r = shrink_scenario(spec, config);

  ASSERT_FALSE(r.findings.empty());
  EXPECT_LE(r.runs, config.max_runs);
  EXPECT_EQ(r.spec.apps.size(), 1u);
  EXPECT_LE(r.spec.tiers.size(), 2u);
  EXPECT_FALSE(r.spec.grid.enabled());
  EXPECT_EQ(r.spec.floorplan_jitter_rel, 0.0);
  EXPECT_TRUE(r.spec.fan);
  EXPECT_EQ(r.spec.ambient_c, 25.0);
  EXPECT_EQ(r.spec.heatsink_g_scale, 1.0);
  EXPECT_EQ(r.spec.tick_s, 0.01);
  EXPECT_EQ(r.spec.governor, "gts-ondemand");
  EXPECT_EQ(r.spec.sim_seed, 1u);
  for (const TierSpec& t : r.spec.tiers) {
    EXPECT_EQ(t.num_cores, 4u);
    EXPECT_EQ(t.freq_scale, 1.0);
    EXPECT_EQ(t.leak_scale, 1.0);
  }
  // Instruction halving kicked in: the reproducer is shorter than the
  // original app instance.
  EXPECT_LT(r.spec.apps[0].instruction_scale,
            spec.apps[0].instruction_scale);
  // The minimized spec still reproduces the failure when re-executed.
  EXPECT_FALSE(run_differential(r.spec, config.tol).ok());
}

TEST(Shrink, RespectsRunBudget) {
  GeneratorConfig gen;
  gen.min_apps = 4;
  gen.max_apps = 4;
  gen.min_runtime_s = 1.0;
  gen.max_runtime_s = 2.0;
  ShrinkConfig config;
  config.tol.avg_temp_tol_c = -1.0;
  config.max_runs = 5;
  const ShrinkResult r =
      shrink_scenario(generate_scenario(47, 2, gen), config);
  EXPECT_LE(r.runs, 5u);
  ASSERT_FALSE(r.findings.empty());
}

}  // namespace
}  // namespace topil::scenario
