#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "scenario/generator.hpp"

namespace topil::scenario {
namespace {

ScenarioSpec sample_spec() {
  ScenarioSpec spec;
  spec.id = 17;
  spec.sim_seed = 987654321098765ull;
  spec.tiers = {TierSpec{"little", 0.0, 4},
                TierSpec{"mid", 0.5, 3, 0.9717171717, 1.05, 1.2, 0.8},
                TierSpec{"big", 1.0, 2, 1.1, 0.95, 1.0, 1.0}};
  spec.npu = true;
  spec.floorplan_jitter_rel = 0.12345678901234567;
  spec.floorplan_jitter_seed = 42;
  spec.fan = false;
  spec.ambient_c = 31.7;
  spec.heatsink_g_scale = 0.75;
  spec.tick_s = 0.005;
  spec.max_duration_s = 123.456;
  spec.governor = "toprl";
  spec.apps = {{"seidel-2d", 0.3, 0.0, 1e-3},
               {"canneal", 0.6180339887498949, 2.5, 0.07}};
  return spec;
}

TEST(ScenarioSerialize, RoundTripIsExact) {
  const ScenarioSpec spec = sample_spec();
  const std::string text = spec.serialize();
  const ScenarioSpec back = ScenarioSpec::parse(text);
  // Text-level equality implies field-level bit equality: every double is
  // rendered shortest-round-trip (csv_format_double) and re-parsed with
  // from_chars.
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.id, spec.id);
  EXPECT_EQ(back.sim_seed, spec.sim_seed);
  EXPECT_EQ(back.tiers.size(), 3u);
  EXPECT_EQ(back.tiers[1].name, "mid");
  EXPECT_EQ(back.tiers[1].perf_blend, 0.5);
  EXPECT_EQ(back.tiers[1].num_cores, 3u);
  EXPECT_EQ(back.tiers[1].freq_scale, 0.9717171717);
  EXPECT_EQ(back.apps.size(), 2u);
  EXPECT_EQ(back.apps[1].qos_fraction, 0.6180339887498949);
  EXPECT_EQ(back.floorplan_jitter_rel, 0.12345678901234567);
  EXPECT_FALSE(back.fan);
  EXPECT_TRUE(back.npu);
  EXPECT_EQ(back.governor, "toprl");
}

TEST(ScenarioSerialize, GeneratedSpecsRoundTrip) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    const ScenarioSpec spec = generate_scenario(99, i);
    const ScenarioSpec back = ScenarioSpec::parse(spec.serialize());
    EXPECT_EQ(back.serialize(), spec.serialize()) << "index " << i;
  }
}

TEST(ScenarioSerialize, TierAndGridLinesRoundTrip) {
  // Arbitrary tier names / blends and a grid placement use the general
  // `tier` / `grid` lines; canonical name-blend pairs keep the legacy
  // `cluster` line for corpus byte-stability.
  ScenarioSpec spec = sample_spec();
  spec.tiers = {TierSpec{"efficiency", 0.25, 4, 0.97, 1.01, 1.1, 0.9},
                TierSpec{"big", 1.0, 4},
                TierSpec{"prime", 0.75, 4}};
  spec.grid = GridPlacement{3, 4};
  const std::string text = spec.serialize();
  EXPECT_NE(text.find("tier = efficiency 0.25 4"), std::string::npos);
  EXPECT_NE(text.find("cluster = big 4"), std::string::npos);
  EXPECT_NE(text.find("grid = 3 4"), std::string::npos);
  const ScenarioSpec back = ScenarioSpec::parse(text);
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.tiers[0].name, "efficiency");
  EXPECT_EQ(back.tiers[0].perf_blend, 0.25);
  EXPECT_EQ(back.tiers[2].name, "prime");
  EXPECT_EQ(back.grid.rows, 3u);
  EXPECT_EQ(back.grid.cols, 4u);
}

TEST(ScenarioSerialize, SaveLoadRoundTrips) {
  const ScenarioSpec spec = sample_spec();
  const std::string path =
      ::testing::TempDir() + "/topil_scenario_roundtrip.scenario";
  spec.save(path);
  const ScenarioSpec back = ScenarioSpec::load(path);
  EXPECT_EQ(back.serialize(), spec.serialize());
  std::remove(path.c_str());
}

TEST(ScenarioSerialize, ToleratesCommentsAndBlankLines) {
  std::string text = sample_spec().serialize();
  text += "\n# trailing comment\n   \n";
  text.insert(text.find("fan ="), "# cooling section\n");
  const ScenarioSpec back = ScenarioSpec::parse(text);
  EXPECT_EQ(back.serialize(), sample_spec().serialize());
}

TEST(ScenarioSerialize, RejectsMalformedInput) {
  const std::string good = sample_spec().serialize();
  EXPECT_THROW(ScenarioSpec::parse("not-a-scenario\n"), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse("topil-scenario v999\n"), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "mystery = 1\n"), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "cluster = big 4\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "cluster = huge 4 1 1 1 1\n"),
               InvalidArgument);  // legacy names only on `cluster` lines
  EXPECT_THROW(ScenarioSpec::parse(good + "tier = x 0.5 4\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "grid = 4\n"), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "grid = 0 4\n"), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse(good + "tick_s = fast\n"),
               InvalidArgument);
  EXPECT_THROW(
      ScenarioSpec::parse("topil-scenario v1\ncluster = big 4 1 1 1 1\n"),
      InvalidArgument);  // no apps
  EXPECT_THROW(ScenarioSpec::load("/nonexistent/path.scenario"),
               InvalidArgument);
}

TEST(ScenarioSerialize, MaterializeRejectsStructurallyInvalidSpecs) {
  ScenarioSpec spec = sample_spec();
  spec.apps[0].name = "no-such-app";
  EXPECT_THROW(materialize(spec), Error);

  spec = sample_spec();
  spec.tiers[0].perf_blend = 1.5;  // off the calibrated perf axis
  EXPECT_THROW(materialize(spec), Error);

  spec = sample_spec();
  spec.grid = GridPlacement{2, 2};  // does not cover the 9 cores
  EXPECT_THROW(materialize(spec), Error);

  spec = sample_spec();
  spec.apps[0].qos_fraction = 1.5;
  EXPECT_THROW(materialize(spec), Error);

  spec = sample_spec();
  spec.governor = "antikythera";
  EXPECT_THROW(
      make_scenario_governor(spec.governor, build_platform(spec), 1),
      InvalidArgument);
}

}  // namespace
}  // namespace topil::scenario
