#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace topil::scenario {
namespace {

CampaignConfig quick_config() {
  CampaignConfig config;
  config.seed = 71;
  config.count = 6;
  config.generator.max_apps = 2;
  config.generator.min_runtime_s = 1.0;
  config.generator.max_runtime_s = 2.0;
  return config;
}

TEST(Campaign, DigestIndependentOfJobCount) {
  CampaignConfig config = quick_config();
  config.jobs = 1;
  const CampaignResult serial = run_campaign(config);
  config.jobs = 4;
  const CampaignResult parallel = run_campaign(config);

  EXPECT_EQ(serial.executed, 6u);
  EXPECT_EQ(serial.failed, 0u);
  EXPECT_EQ(serial.campaign_digest, parallel.campaign_digest);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].digest, parallel.outcomes[i].digest);
  }
}

TEST(Campaign, ExpiredBudgetSkipsEverything) {
  CampaignConfig config = quick_config();
  config.budget_s = 1e-9;  // already expired when the first scenario asks
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.skipped, 6u);
  EXPECT_EQ(result.executed, 0u);
  EXPECT_TRUE(result.ok());
}

TEST(Campaign, FailuresAreShrunkAndSerialized) {
  const std::string dir = ::testing::TempDir() + "/topil_campaign_corpus";
  std::filesystem::create_directories(dir);

  CampaignConfig config = quick_config();
  config.count = 2;
  config.tol.avg_temp_tol_c = -1.0;  // every scenario fails
  config.shrink_budget = 20;
  config.corpus_dir = dir;
  const CampaignResult result = run_campaign(config);

  EXPECT_EQ(result.failed, 2u);
  EXPECT_FALSE(result.ok());
  for (const ScenarioOutcome& out : result.outcomes) {
    ASSERT_EQ(out.status, ScenarioStatus::Failed);
    EXPECT_FALSE(out.findings.empty());
    EXPECT_GT(out.shrink_runs, 0u);
    ASSERT_FALSE(out.corpus_path.empty());
    // The serialized reproducer loads back and still describes the
    // minimized scenario.
    const ScenarioSpec back = ScenarioSpec::load(out.corpus_path);
    EXPECT_EQ(back.serialize(), out.minimized.serialize());
    std::remove(out.corpus_path.c_str());
  }
}

}  // namespace
}  // namespace topil::scenario
