#include "scenario/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "platform/floorplan.hpp"
#include "power/power_model.hpp"
#include "thermal/thermal_model.hpp"

namespace topil::scenario {
namespace {

TEST(ScenarioGenerator, DeterministicInSeedAndIndex) {
  for (std::uint64_t i = 0; i < 6; ++i) {
    const ScenarioSpec a = generate_scenario(7, i);
    const ScenarioSpec b = generate_scenario(7, i);
    EXPECT_EQ(a.serialize(), b.serialize()) << "index " << i;
  }
  // Different indices and seeds explore different scenarios.
  EXPECT_NE(generate_scenario(7, 0).serialize(),
            generate_scenario(7, 1).serialize());
  EXPECT_NE(generate_scenario(7, 0).serialize(),
            generate_scenario(8, 0).serialize());
}

TEST(ScenarioGenerator, RespectsConfiguredDistributionBounds) {
  const GeneratorConfig config;
  std::set<std::string> governors;
  std::set<double> ticks;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const ScenarioSpec spec = generate_scenario(11, i, config);
    EXPECT_EQ(spec.id, i);
    EXPECT_GE(spec.apps.size(), config.min_apps);
    EXPECT_LE(spec.apps.size(), config.max_apps);
    EXPECT_GE(spec.tiers.size(), config.min_clusters);
    EXPECT_LE(spec.tiers.size(), config.max_clusters);
    if (spec.tiers.size() >= 2) {
      EXPECT_EQ(spec.tiers.front().name, "little");
      EXPECT_EQ(spec.tiers.back().name, "big");
    }
    std::size_t total_cores = 0;
    double prev_blend = -1.0;
    for (const TierSpec& t : spec.tiers) {
      EXPECT_GE(t.num_cores, config.min_cores_per_cluster);
      EXPECT_LE(t.num_cores, config.max_cores_per_cluster);
      EXPECT_GT(t.perf_blend, prev_blend);
      prev_blend = t.perf_blend;
      total_cores += t.num_cores;
    }
    if (spec.grid.enabled()) {
      EXPECT_EQ(spec.grid.rows * spec.grid.cols, total_cores);
    }
    EXPECT_TRUE(std::is_sorted(
        spec.apps.begin(), spec.apps.end(),
        [](const ScenarioApp& a, const ScenarioApp& b) {
          return a.arrival_time_s < b.arrival_time_s;
        }));
    for (const ScenarioApp& a : spec.apps) {
      EXPECT_GE(a.qos_fraction, config.min_qos_fraction);
      EXPECT_LE(a.qos_fraction, config.max_qos_fraction);
      EXPECT_GT(a.instruction_scale, 0.0);
    }
    EXPECT_GT(spec.max_duration_s, spec.apps.back().arrival_time_s);
    governors.insert(spec.governor);
    ticks.insert(spec.tick_s);
  }
  // 24 draws cover several governors and tick sizes.
  EXPECT_GE(governors.size(), 2u);
  EXPECT_GE(ticks.size(), 2u);
}

TEST(ScenarioGenerator, GeneratedScenariosPassTheirOwnFeasibilityGuards) {
  const GeneratorConfig config;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const ScenarioSpec spec = generate_scenario(23, i, config);
    const MaterializedScenario m = materialize(spec);

    const Floorplan fp =
        Floorplan::for_platform(m.platform, m.sim.floorplan);
    const ThermalModel model(m.platform, fp, m.cooling);
    EXPECT_LE(spec.tick_s / model.network().max_stable_dt(),
              static_cast<double>(config.max_substeps_per_tick) + 1e-9)
        << "index " << i;

    const PowerModel power(m.platform);
    std::vector<std::size_t> levels(m.platform.num_clusters());
    for (ClusterId c = 0; c < m.platform.num_clusters(); ++c) {
      levels[c] = m.platform.cluster(c).vf.num_levels() - 1;
    }
    const std::vector<double> activity(m.platform.num_cores(), 1.2);
    const std::vector<double> temps(m.platform.num_cores(),
                                    config.max_steady_temp_c);
    const std::vector<double> steady =
        model.steady_state(power.compute(levels, activity, temps, spec.npu));
    EXPECT_LE(*std::max_element(steady.begin(), steady.end()),
              config.max_steady_temp_c + 1e-9)
        << "index " << i;
  }
}

TEST(ScenarioGenerator, MaterializeAlignsAppsWorkloadAndQosTargets) {
  for (std::uint64_t i = 0; i < 6; ++i) {
    const ScenarioSpec spec = generate_scenario(31, i);
    const MaterializedScenario m = materialize(spec);
    ASSERT_EQ(m.apps.size(), spec.apps.size());
    ASSERT_EQ(m.workload.size(), spec.apps.size());
    for (std::size_t k = 0; k < m.apps.size(); ++k) {
      const WorkloadItem& item = m.workload.items()[k];
      EXPECT_EQ(item.app, m.apps[k].get());
      EXPECT_EQ(&Workload::app_of(item), m.apps[k].get());
      EXPECT_EQ(item.arrival_time, spec.apps[k].arrival_time_s);
      EXPECT_DOUBLE_EQ(item.qos_target_ips,
                       spec.apps[k].qos_fraction *
                           m.apps[k]->peak_ips(m.platform));
      // The adapted app has one perf row per generated cluster.
      for (const PhaseSpec& phase : m.apps[k]->phases) {
        EXPECT_EQ(phase.perf.size(), spec.tiers.size());
      }
    }
  }
}

TEST(ScenarioGenerator, MidClusterInterpolatesBetweenLittleAndBig) {
  ScenarioSpec spec;
  spec.tiers = {TierSpec{"little", 0.0, 4}, TierSpec{"mid", 0.5, 4},
                TierSpec{"big", 1.0, 4}};
  spec.apps = {{"seidel-2d", 0.5, 0.0, 1.0}};
  const MaterializedScenario m = materialize(spec);
  ASSERT_EQ(m.platform.num_clusters(), 3u);
  const VFTable& little = m.platform.cluster(0).vf;
  const VFTable& mid = m.platform.cluster(1).vf;
  const VFTable& big = m.platform.cluster(2).vf;
  EXPECT_GT(mid.max_freq(), little.max_freq());
  EXPECT_LT(mid.max_freq(), big.max_freq());
  // App perf on mid sits strictly between the endpoints too.
  const PhaseSpec& phase = m.apps[0]->phases[0];
  EXPECT_GT(phase.perf[1].cpi, std::min(phase.perf[0].cpi,
                                        phase.perf[2].cpi));
  EXPECT_LT(phase.perf[1].cpi, std::max(phase.perf[0].cpi,
                                        phase.perf[2].cpi));
}

}  // namespace
}  // namespace topil::scenario
