// Replays every committed .scenario reproducer under the full differential
// oracle stack. The corpus is the regression net of the fuzzing campaign:
// once a failure is fixed, its minimized scenario lands here and every
// future ctest run re-executes it (three simulator runs + all oracles).
//
// The corpus directory is compiled in (TOPIL_SCENARIO_CORPUS_DIR, set in
// tests/CMakeLists.txt) so the binary finds it from any build directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/differential.hpp"

namespace topil::scenario {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TOPIL_SCENARIO_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioCorpus, HasAtLeastTenScenarios) {
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(ScenarioCorpus, EveryScenarioReplaysClean) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    const ScenarioSpec spec = ScenarioSpec::load(path);
    const DifferentialResult r = run_differential(spec);
    EXPECT_GT(r.ticks, 0u) << path;
    for (const Finding& f : r.findings) {
      ADD_FAILURE() << path << ": [" << f.oracle << "] " << f.detail;
    }
  }
}

TEST(ScenarioCorpus, ReplayDigestsAreStable) {
  // Loading a scenario from disk and replaying it twice must produce the
  // same digest — the property the campaign's rerun oracle and the CI
  // digest gate rely on.
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty());
  const ScenarioSpec spec = ScenarioSpec::load(files.front());
  EXPECT_EQ(run_differential(spec).digest, run_differential(spec).digest);
}

}  // namespace
}  // namespace topil::scenario
