#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "governors/powersave.hpp"
#include "validate/state_digest.hpp"
#include "workloads/generator.hpp"

namespace topil::validate {
namespace {

// Golden trace digests for two small fixed scenarios. These pin the
// simulator's observable behavior bit-for-bit: any change to the thermal
// solver, performance model, RNG consumption order, or accounting shows up
// as a digest mismatch here before it silently shifts paper figures.
//
// Regenerating after an *intended* behavior change: run this test, copy the
// printed actual digests, and update the constants together with a note in
// the commit message (see DESIGN.md §8).
constexpr const char* kGoldenOndemand = "fd86f0fd9a2ce475";
constexpr const char* kGoldenPowersave = "a282addbfaa0a585";

std::string run_digest(const std::string& governor_name) {
  const PlatformSpec& platform = PlatformSpec::hikey970();
  const WorkloadGenerator generator(platform);
  WorkloadGenerator::MixedConfig mixed;
  mixed.num_apps = 2;
  mixed.arrival_rate_per_s = 0.2;
  mixed.seed = 5;
  const Workload workload =
      generator.mixed(mixed, AppDatabase::instance().mixed_pool());

  ExperimentConfig config;
  config.max_duration_s = 30.0;
  config.sim.seed = 42;
  config.sim.validate = true;
  // The golden constants were generated with the Heun reference
  // integrator; pin it so a future default flip cannot shift them.
  config.sim.integrator = ThermalIntegrator::Heun;

  const auto governor = governor_name == "gts-ondemand"
                            ? make_gts_ondemand()
                            : make_gts_powersave();
  const ExperimentResult result =
      run_experiment(platform, *governor, workload, config);
  EXPECT_TRUE(result.validation->clean()) << result.validation->summary();
  return digest_hex(result.validation->trace_digest);
}

TEST(GoldenTraceTest, OndemandScenarioMatchesGolden) {
  const std::string actual = run_digest("gts-ondemand");
  EXPECT_EQ(actual, kGoldenOndemand)
      << "behavior changed; if intended, update kGoldenOndemand to "
      << actual;
}

TEST(GoldenTraceTest, PowersaveScenarioMatchesGolden) {
  const std::string actual = run_digest("gts-powersave");
  EXPECT_EQ(actual, kGoldenPowersave)
      << "behavior changed; if intended, update kGoldenPowersave to "
      << actual;
}

TEST(GoldenTraceTest, RepeatedRunsAreBitIdentical) {
  EXPECT_EQ(run_digest("gts-ondemand"), run_digest("gts-ondemand"));
}

}  // namespace
}  // namespace topil::validate
