#include "validate/invariant_checker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "apps/app_model.hpp"
#include "core/experiment.hpp"
#include "governors/powersave.hpp"
#include "workloads/generator.hpp"

namespace topil::validate {
namespace {

// Fault-injection tests: drive the public check primitives with corrupt
// data and require the structured violation; then run a real simulation
// and require a clean bill of health.

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantChecker checker_;  // fail-fast defaults

  static Violation catch_violation(const std::function<void()>& fn) {
    try {
      fn();
    } catch (const ValidationError& e) {
      return e.violation();
    }
    ADD_FAILURE() << "expected a ValidationError";
    return {};
  }
};

TEST_F(InvariantCheckerTest, TemperatureBelowAmbientTrips) {
  const Violation v = catch_violation([&] {
    checker_.check_temperature_bounds({45.0, 24.0}, 25.0, 1.0, 100);
  });
  EXPECT_EQ(v.invariant, "below_ambient");
  EXPECT_EQ(v.component, "thermal");
  EXPECT_DOUBLE_EQ(v.observed, 24.0);
  EXPECT_EQ(v.tick, 100u);
}

TEST_F(InvariantCheckerTest, TemperatureAboveCeilingTrips) {
  const Violation v = catch_violation([&] {
    checker_.check_temperature_bounds({200.0}, 25.0, 1.0, 1);
  });
  EXPECT_EQ(v.invariant, "above_ceiling");
}

TEST_F(InvariantCheckerTest, TemperatureNanTrips) {
  // NaN fails both ordered comparisons; the bounds check must not let it
  // slide through as "neither below nor above".
  EXPECT_THROW(checker_.check_temperature_bounds(
                   {std::numeric_limits<double>::quiet_NaN()}, 25.0, 1.0, 1),
               ValidationError);
}

TEST_F(InvariantCheckerTest, EnergyImbalanceTrips) {
  // 1 J/K capacitance heated by 10 K with zero power injected: 10 J appear
  // from nowhere.
  const Violation v = catch_violation([&] {
    checker_.check_energy_balance({25.0}, {35.0}, {0.0}, {1.0}, {0.0}, 25.0,
                                  0.01, 1.0, 1);
  });
  EXPECT_EQ(v.component, "energy");
  EXPECT_EQ(v.invariant, "tick_balance");
  EXPECT_NEAR(v.observed, 10.0, 1e-9);
}

TEST_F(InvariantCheckerTest, EnergyBalancedTickPasses) {
  // 100 W into 1 J/K for 10 ms with no ambient loss: exactly +1 K.
  checker_.check_energy_balance({25.0}, {26.0}, {100.0}, {1.0}, {0.0}, 25.0,
                                0.01, 1.0, 1);
  EXPECT_TRUE(checker_.report().clean());
  EXPECT_NEAR(checker_.report().max_tick_energy_residual_j, 0.0, 1e-12);
}

TEST_F(InvariantCheckerTest, CumulativeEnergyDriftTrips) {
  // Each tick leaks less than the per-tick tolerance, but the run-level
  // balance integrates the bias and must eventually trip.
  ValidationConfig config;
  config.energy_tick_abs_tol_j = 0.05;
  config.energy_total_abs_tol_j = 0.5;
  config.energy_total_rel_tol = 0.0;
  InvariantChecker checker(config);
  EXPECT_THROW(
      {
        for (int t = 0; t < 100; ++t) {
          // 0.04 J per tick out of thin air (within per-tick slack).
          checker.check_energy_balance({25.0}, {25.04}, {0.0}, {1.0}, {0.0},
                                       25.0, 0.01, 0.01 * t, t);
        }
      },
      ValidationError);
}

TEST_F(InvariantCheckerTest, CounterDecreaseTrips) {
  const Violation v = catch_violation([&] {
    checker_.check_counter_monotone("instructions", 1e9, 0.9e9, 42, 1.0, 7);
  });
  EXPECT_EQ(v.invariant, "instructions_decreased");
  EXPECT_NE(v.detail.find("42"), std::string::npos);
}

TEST_F(InvariantCheckerTest, NonFiniteCounterTrips) {
  EXPECT_THROW(checker_.check_counter_monotone(
                   "instructions", 0.0,
                   std::numeric_limits<double>::quiet_NaN(), 1, 1.0, 1),
               ValidationError);
}

TEST_F(InvariantCheckerTest, QosBelowExceedingObservedTrips) {
  const Violation v = catch_violation([&] {
    checker_.check_qos_accounting(/*below=*/5.0, /*observed=*/4.0,
                                  /*arrival=*/0.0, /*grace=*/2.0,
                                  /*tick=*/0.01, 1, 10.0, 1000);
  });
  EXPECT_EQ(v.invariant, "below_exceeds_observed");
}

TEST_F(InvariantCheckerTest, QosObservedExceedingLifetimeTrips) {
  // Arrived 1 s ago with a 2 s grace period: no QoS time can have been
  // observed yet, let alone 3 s of it.
  const Violation v = catch_violation([&] {
    checker_.check_qos_accounting(0.0, 3.0, /*arrival=*/9.0, /*grace=*/2.0,
                                  0.01, 1, 10.0, 1000);
  });
  EXPECT_EQ(v.invariant, "observed_exceeds_lifetime");
}

TEST_F(InvariantCheckerTest, QosWithinGracePassesAtExactBoundary) {
  // now - arrival == grace exactly: one tick of observation is legal.
  checker_.check_qos_accounting(0.0, 0.01, /*arrival=*/8.0, /*grace=*/2.0,
                                0.01, 1, 10.0, 1000);
  EXPECT_TRUE(checker_.report().clean());
}

TEST_F(InvariantCheckerTest, NegativeQosTimeTrips) {
  EXPECT_THROW(
      checker_.check_qos_accounting(-0.1, 1.0, 0.0, 2.0, 0.01, 1, 10.0, 1),
      ValidationError);
}

TEST_F(InvariantCheckerTest, UtilizationOutOfRangeTrips) {
  EXPECT_THROW(checker_.check_utilization(1.5, 3, 1.0, 1), ValidationError);
  EXPECT_THROW(checker_.check_utilization(-0.5, 3, 1.0, 1), ValidationError);
  // The exact endpoints are legal.
  InvariantChecker fresh;
  fresh.check_utilization(0.0, 3, 1.0, 1);
  fresh.check_utilization(1.0, 3, 1.0, 1);
  EXPECT_TRUE(fresh.report().clean());
}

TEST_F(InvariantCheckerTest, EpochPeriodDriftTrips) {
  checker_.check_epoch_period(0.5, 0.5, 0.5, 0.01);
  checker_.check_epoch_period(1.0, 0.5, 1.0, 0.01);
  // Third epoch 0.51 s after the second: off the grid.
  const Violation v = catch_violation(
      [&] { checker_.check_epoch_period(1.51, 0.5, 1.51, 0.01); });
  EXPECT_EQ(v.invariant, "period_drift");
  EXPECT_NEAR(v.observed, 0.51, 1e-12);
}

TEST_F(InvariantCheckerTest, EpochDeadlineMissTrips) {
  // Deadline 0.5 s, but the governor only acted at 0.53 s — more than one
  // tick late.
  const Violation v = catch_violation(
      [&] { checker_.check_epoch_period(0.5, 0.5, 0.53, 0.01); });
  EXPECT_EQ(v.invariant, "deadline_missed");
}

TEST_F(InvariantCheckerTest, RecordOnlyModeCollectsWithoutThrowing) {
  ValidationConfig config;
  config.fail_fast = false;
  config.max_recorded_violations = 3;
  InvariantChecker checker(config);
  for (int i = 0; i < 10; ++i) {
    checker.check_utilization(2.0, 0, 0.01 * i, i);
  }
  EXPECT_FALSE(checker.report().clean());
  // Capped at the configured maximum.
  EXPECT_EQ(checker.report().violations.size(), 3u);
}

// --- end-to-end: a real governed run must pass every invariant ---

TEST(InvariantCheckerEndToEndTest, GovernedRunIsCleanUnderBothIntegrators) {
  const PlatformSpec& platform = PlatformSpec::hikey970();
  const WorkloadGenerator generator(platform);
  WorkloadGenerator::MixedConfig mixed;
  mixed.num_apps = 3;
  mixed.arrival_rate_per_s = 0.1;
  mixed.seed = 11;
  const Workload workload =
      generator.mixed(mixed, AppDatabase::instance().mixed_pool());

  for (ThermalIntegrator integrator :
       {ThermalIntegrator::Heun, ThermalIntegrator::Exponential}) {
    ExperimentConfig config;
    config.max_duration_s = 60.0;
    config.sim.integrator = integrator;
    config.sim.validate = true;
    const auto governor = make_gts_ondemand();
    const ExperimentResult result =
        run_experiment(platform, *governor, workload, config);
    ASSERT_NE(result.validation, nullptr);
    EXPECT_TRUE(result.validation->clean()) << result.validation->summary();
    EXPECT_GT(result.validation->ticks_checked, 0u);
    EXPECT_NE(result.validation->trace_digest, 0u);
  }
}

TEST(InvariantCheckerEndToEndTest, ReportNullWithoutValidateFlag) {
  const PlatformSpec& platform = PlatformSpec::hikey970();
  const WorkloadGenerator generator(platform);
  const Workload workload =
      generator.single(AppDatabase::instance().by_name("adi"));
  ExperimentConfig config;
  config.max_duration_s = 5.0;
  const auto governor = make_gts_powersave();
  const ExperimentResult result =
      run_experiment(platform, *governor, workload, config);
  EXPECT_EQ(result.validation, nullptr);
}

}  // namespace
}  // namespace topil::validate
