#include "validate/state_digest.hpp"

#include <gtest/gtest.h>

#include "apps/app_model.hpp"
#include "sim/system_sim.hpp"

namespace topil::validate {
namespace {

TEST(Fnv64Test, DistinguishesInputs) {
  Fnv64 a;
  a.u64(1);
  Fnv64 b;
  b.u64(2);
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), Fnv64{}.value());
}

TEST(Fnv64Test, F64HashesBitPattern) {
  Fnv64 pos;
  pos.f64(0.0);
  Fnv64 neg;
  neg.f64(-0.0);
  // 0.0 == -0.0 arithmetically, but the digest must see the bit flip — a
  // sign difference in a temperature delta is a real divergence.
  EXPECT_NE(pos.value(), neg.value());
}

TEST(TraceDigestTest, TickOrderMatters) {
  TraceDigest ab;
  ab.absorb(1);
  ab.absorb(2);
  TraceDigest ba;
  ba.absorb(2);
  ba.absorb(1);
  EXPECT_NE(ab.value(), ba.value());
  EXPECT_EQ(ab.ticks(), 2u);
}

TEST(DigestHexTest, CanonicalFormat) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xdeadbeef01234567ull), "deadbeef01234567");
}

class TickDigestTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig config(std::uint64_t seed) const {
    SimConfig c;
    c.seed = seed;
    return c;
  }

  AppSpec app() const {
    return make_single_phase_app("steady", 1e13, {2.0, 0.1, 0.9},
                                 {1.0, 0.05, 1.0}, 0.01, false);
  }
};

TEST_F(TickDigestTest, IdenticalRunsProduceIdenticalDigests) {
  SystemSim a(platform_, CoolingConfig::fan(), config(7));
  SystemSim b(platform_, CoolingConfig::fan(), config(7));
  a.spawn(app(), 1e8, 5);
  b.spawn(app(), 1e8, 5);
  for (int i = 0; i < 50; ++i) {
    a.step();
    b.step();
    ASSERT_EQ(tick_state_digest(a), tick_state_digest(b)) << "tick " << i;
  }
}

TEST_F(TickDigestTest, SensitiveToSeedAndPlacement) {
  SystemSim a(platform_, CoolingConfig::fan(), config(7));
  SystemSim b(platform_, CoolingConfig::fan(), config(8));
  SystemSim c(platform_, CoolingConfig::fan(), config(7));
  a.spawn(app(), 1e8, 5);
  b.spawn(app(), 1e8, 5);
  c.spawn(app(), 1e8, 2);  // same app, different core
  for (int i = 0; i < 10; ++i) {
    a.step();
    b.step();
    c.step();
  }
  // Different sensor-noise seed and different placement must both show up.
  EXPECT_NE(tick_state_digest(a), tick_state_digest(b));
  EXPECT_NE(tick_state_digest(a), tick_state_digest(c));
}

TEST_F(TickDigestTest, SensitiveToVfLevel) {
  SystemSim a(platform_, CoolingConfig::fan(), config(7));
  SystemSim b(platform_, CoolingConfig::fan(), config(7));
  b.request_vf_level(kBigCluster,
                     platform_.cluster(kBigCluster).vf.num_levels() - 1);
  a.step();
  b.step();
  EXPECT_NE(tick_state_digest(a), tick_state_digest(b));
}

}  // namespace
}  // namespace topil::validate
