// Fleet-engine determinism contract (DESIGN.md §10): every lane of a
// batched lockstep run must be bit-identical — same per-tick state digest,
// same tick count, same results — to the same simulation run alone through
// the scalar run_experiment path, for any batch size and composition.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app_database.hpp"
#include "governors/powersave.hpp"
#include "governors/topil_governor.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/fleet/batch_runner.hpp"
#include "sim/fleet/fleet_engine.hpp"
#include "validate/digest_monitor.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TOPIL_SCENARIO_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t ticks = 0;
  ExperimentResult result;
};

ExperimentConfig scenario_run_config(const scenario::MaterializedScenario& m) {
  ExperimentConfig config;
  config.cooling = m.cooling;
  config.sim = m.sim;
  config.sim.integrator = ThermalIntegrator::Exponential;
  config.max_duration_s = m.max_duration_s;
  return config;
}

RunOutcome scalar_run(const scenario::ScenarioSpec& spec) {
  const scenario::MaterializedScenario m = scenario::materialize(spec);
  validate::DigestMonitor monitor;
  ExperimentConfig config = scenario_run_config(m);
  config.monitor = &monitor;
  auto governor =
      scenario::make_scenario_governor(spec.governor, m.platform, spec.sim_seed);
  RunOutcome out;
  out.result = run_experiment(m.platform, *governor, m.workload, config);
  out.digest = monitor.digest();
  out.ticks = monitor.ticks();
  return out;
}

std::vector<RunOutcome> fleet_run(
    const std::vector<scenario::ScenarioSpec>& specs, std::size_t batch,
    std::size_t jobs = 1) {
  std::vector<scenario::MaterializedScenario> ms;
  ms.reserve(specs.size());
  for (const auto& spec : specs) ms.push_back(scenario::materialize(spec));

  std::deque<validate::DigestMonitor> monitors(specs.size());
  std::vector<fleet::FleetJob> fleet_jobs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    fleet::FleetJob& job = fleet_jobs[i];
    job.platform = &ms[i].platform;
    job.workload = &ms[i].workload;
    job.config = scenario_run_config(ms[i]);
    job.config.monitor = &monitors[i];
    job.make_governor = [&specs, &ms, i](npu::InferenceAggregator*) {
      return scenario::make_scenario_governor(specs[i].governor,
                                              ms[i].platform,
                                              specs[i].sim_seed);
    };
  }

  fleet::FleetOptions options;
  options.batch = batch;
  options.jobs = jobs;
  const std::vector<ExperimentResult> results =
      fleet::run_experiments(fleet_jobs, options);

  std::vector<RunOutcome> out(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out[i].result = results[i];
    out[i].digest = monitors[i].digest();
    out[i].ticks = monitors[i].ticks();
  }
  return out;
}

void expect_equal_outcome(const RunOutcome& fleet, const RunOutcome& scalar,
                          const std::string& label) {
  EXPECT_EQ(fleet.digest, scalar.digest) << label;
  EXPECT_EQ(fleet.ticks, scalar.ticks) << label;
  EXPECT_DOUBLE_EQ(fleet.result.avg_temp_c, scalar.result.avg_temp_c)
      << label;
  EXPECT_DOUBLE_EQ(fleet.result.peak_temp_c, scalar.result.peak_temp_c)
      << label;
  EXPECT_EQ(fleet.result.qos_violations, scalar.result.qos_violations)
      << label;
  EXPECT_EQ(fleet.result.apps_completed, scalar.result.apps_completed)
      << label;
  EXPECT_DOUBLE_EQ(fleet.result.duration_s, scalar.result.duration_s)
      << label;
}

// --- corpus bit-identity at batch sizes 1, 7 (ragged tail), 64 ---------

TEST(FleetCorpus, BitIdenticalToScalarAcrossBatchSizes) {
  std::vector<scenario::ScenarioSpec> specs;
  for (const std::string& path : corpus_files()) {
    specs.push_back(scenario::ScenarioSpec::load(path));
  }
  ASSERT_GE(specs.size(), 10u);

  std::vector<RunOutcome> scalar;
  scalar.reserve(specs.size());
  for (const auto& spec : specs) scalar.push_back(scalar_run(spec));

  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    const std::vector<RunOutcome> fleet = fleet_run(specs, batch);
    ASSERT_EQ(fleet.size(), scalar.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      expect_equal_outcome(fleet[i], scalar[i],
                           "batch " + std::to_string(batch) + " scenario " +
                               std::to_string(specs[i].id));
    }
  }
}

TEST(FleetCorpus, WorkerCountDoesNotChangeResults) {
  std::vector<scenario::ScenarioSpec> specs;
  for (const std::string& path : corpus_files()) {
    specs.push_back(scenario::ScenarioSpec::load(path));
  }
  const std::vector<RunOutcome> serial = fleet_run(specs, 4, 1);
  const std::vector<RunOutcome> threaded = fleet_run(specs, 4, 4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].digest, threaded[i].digest) << i;
    EXPECT_EQ(serial[i].ticks, threaded[i].ticks) << i;
  }
}

// --- homogeneous fleet: one propagator group, batched thermal path -----

TEST(FleetCorpus, HomogeneousFleetFillsWideBatch) {
  // The corpus scenarios carry distinct jittered RC networks, so they
  // exercise the ragged/singleton-group paths. Replicating one spec with
  // varied sensor seeds builds a 64-lane batch that shares a single
  // propagator group — the wide SoA path the engine exists for.
  const scenario::ScenarioSpec base =
      scenario::ScenarioSpec::load(corpus_files().front());
  std::vector<scenario::ScenarioSpec> specs;
  for (std::uint64_t s = 0; s < 64; ++s) {
    scenario::ScenarioSpec spec = base;
    spec.sim_seed = base.sim_seed + s;
    specs.push_back(spec);
  }

  // Scalar reference for a sample of lanes (all 64 would dominate test
  // time without adding coverage: lanes only differ in sensor seed).
  const std::vector<RunOutcome> fleet = fleet_run(specs, 64);
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, std::size_t{63}}) {
    const RunOutcome scalar = scalar_run(specs[i]);
    expect_equal_outcome(fleet[i], scalar, "lane " + std::to_string(i));
  }
  // Different sensor seeds must actually diverge (the lanes are distinct
  // simulations, not copies).
  EXPECT_NE(fleet[0].digest, fleet[63].digest);
}

// --- engine-level: batched thermal really runs, bit-equal states -------

TEST(FleetEngine, BatchedThermalMatchesScalarStep) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec& app = AppDatabase::instance().by_name("swaptions");
  SimConfig config;
  config.integrator = ThermalIntegrator::Exponential;

  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kTicks = 500;

  // Twin scalar sims, stepped the ordinary way.
  std::deque<SystemSim> scalar;
  for (std::size_t s = 0; s < kLanes; ++s) {
    SimConfig c = config;
    c.seed = 100 + s;
    scalar.emplace_back(platform, CoolingConfig::fan(), c);
    scalar.back().spawn(app, 1e8, s % platform.num_cores());
  }
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (auto& sim : scalar) sim.step();
  }

  // Fleet lanes with identical construction.
  std::deque<SystemSim> fleet_sims;
  std::vector<fleet::FleetEngine::Lane> lanes;
  for (std::size_t s = 0; s < kLanes; ++s) {
    SimConfig c = config;
    c.seed = 100 + s;
    fleet_sims.emplace_back(platform, CoolingConfig::fan(), c);
    fleet_sims.back().spawn(app, 1e8, s % platform.num_cores());
    fleet::FleetEngine::Lane lane;
    lane.sim = &fleet_sims.back();
    lane.pre_tick = [](SystemSim&) { return true; };
    lanes.push_back(std::move(lane));
  }
  fleet::FleetEngine engine(std::move(lanes));
  for (std::size_t t = 0; t < kTicks; ++t) {
    ASSERT_EQ(engine.step(), kLanes);
  }

  // All lanes share one (network, dt) → every lane-tick went batched.
  EXPECT_EQ(engine.batched_thermal_lane_ticks(), kLanes * kTicks);
  EXPECT_EQ(engine.scalar_thermal_lane_ticks(), 0u);

  for (std::size_t s = 0; s < kLanes; ++s) {
    const auto& a = scalar[s].thermal().node_temps_c();
    const auto& b = fleet_sims[s].thermal().node_temps_c();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "lane " << s << " node " << i;
    }
    EXPECT_EQ(scalar[s].sensor_temp_c(), fleet_sims[s].sensor_temp_c()) << s;
  }
}

// Same contract on the grid-refined spreader floorplan: 37 thermal nodes
// (grid 5), mostly-zero power rows, so the batched kernel's zero-row skip
// and the scalar path must still agree bit for bit.
TEST(FleetEngine, GridFloorplanStaysBitExact) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec& app = AppDatabase::instance().by_name("swaptions");
  SimConfig config;
  config.integrator = ThermalIntegrator::Exponential;
  config.floorplan.package_grid = 5;

  constexpr std::size_t kLanes = 5;
  constexpr std::size_t kTicks = 400;

  std::deque<SystemSim> scalar;
  for (std::size_t s = 0; s < kLanes; ++s) {
    SimConfig c = config;
    c.seed = 300 + s;
    scalar.emplace_back(platform, CoolingConfig::fan(), c);
    scalar.back().spawn(app, 1e8, s % platform.num_cores());
  }
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (auto& sim : scalar) sim.step();
  }

  std::deque<SystemSim> fleet_sims;
  std::vector<fleet::FleetEngine::Lane> lanes;
  for (std::size_t s = 0; s < kLanes; ++s) {
    SimConfig c = config;
    c.seed = 300 + s;
    fleet_sims.emplace_back(platform, CoolingConfig::fan(), c);
    fleet_sims.back().spawn(app, 1e8, s % platform.num_cores());
    fleet::FleetEngine::Lane lane;
    lane.sim = &fleet_sims.back();
    lane.pre_tick = [](SystemSim&) { return true; };
    lanes.push_back(std::move(lane));
  }
  fleet::FleetEngine engine(std::move(lanes));
  for (std::size_t t = 0; t < kTicks; ++t) {
    ASSERT_EQ(engine.step(), kLanes);
  }
  EXPECT_EQ(engine.batched_thermal_lane_ticks(), kLanes * kTicks);
  EXPECT_EQ(engine.scalar_thermal_lane_ticks(), 0u);

  for (std::size_t s = 0; s < kLanes; ++s) {
    const auto& a = scalar[s].thermal().node_temps_c();
    const auto& b = fleet_sims[s].thermal().node_temps_c();
    ASSERT_EQ(a.size(), b.size());
    // 25 spreader cells + 8 cores + 2 clusters + NPU + heatsink.
    ASSERT_EQ(a.size(), 5u * 5u + 12u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "lane " << s << " node " << i;
    }
    EXPECT_EQ(scalar[s].sensor_temp_c(), fleet_sims[s].sensor_temp_c()) << s;
  }
}

// --- NPU aggregation: TOP-IL lanes batched through one device ----------

il::IlPolicyModel tiny_policy(const PlatformSpec& platform) {
  nn::Topology topo;
  topo.inputs = 21;
  topo.hidden = {16};
  topo.outputs = 8;
  nn::Mlp net(topo);
  net.init(7);
  return il::IlPolicyModel(std::move(net), platform);
}

TEST(FleetAggregator, TopIlLanesMatchScalarRuns) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  WorkloadGenerator generator(platform);
  WorkloadGenerator::MixedConfig mixed;
  mixed.num_apps = 4;
  mixed.arrival_rate_per_s = 0.2;

  constexpr std::size_t kLanes = 3;
  std::vector<Workload> workloads;
  for (std::size_t i = 0; i < kLanes; ++i) {
    mixed.seed = 40 + i;
    workloads.push_back(
        generator.mixed(mixed, AppDatabase::instance().mixed_pool()));
  }

  ExperimentConfig config;
  config.sim.integrator = ThermalIntegrator::Exponential;
  config.max_duration_s = 120.0;

  // Scalar reference: each lane alone, self-contained NPU device.
  std::vector<RunOutcome> scalar(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    validate::DigestMonitor monitor;
    ExperimentConfig c = config;
    c.monitor = &monitor;
    TopIlGovernor governor(tiny_policy(platform));
    scalar[i].result = run_experiment(platform, governor, workloads[i], c);
    scalar[i].digest = monitor.digest();
    scalar[i].ticks = monitor.ticks();
  }

  // Fleet: same lanes, inference funneled through the shared aggregator.
  std::deque<validate::DigestMonitor> monitors(kLanes);
  std::vector<fleet::FleetJob> jobs(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    jobs[i].platform = &platform;
    jobs[i].workload = &workloads[i];
    jobs[i].config = config;
    jobs[i].config.monitor = &monitors[i];
    jobs[i].make_governor =
        [&platform](npu::InferenceAggregator* aggregator) {
          TopIlGovernor::Config c;
          c.aggregator = aggregator;
          return std::make_unique<TopIlGovernor>(tiny_policy(platform), c);
        };
  }
  fleet::FleetOptions options;
  options.batch = kLanes;
  const std::vector<ExperimentResult> results =
      fleet::run_experiments(jobs, options);

  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(monitors[i].digest(), scalar[i].digest) << "lane " << i;
    EXPECT_EQ(monitors[i].ticks(), scalar[i].ticks) << "lane " << i;
    EXPECT_DOUBLE_EQ(results[i].avg_temp_c, scalar[i].result.avg_temp_c)
        << i;
    EXPECT_EQ(results[i].apps_completed, scalar[i].result.apps_completed)
        << i;
  }
}

// --- option plumbing ---------------------------------------------------

TEST(FleetOptions, BatchZeroDerivesFromSimConfig) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  WorkloadGenerator generator(platform);
  const Workload w =
      generator.single(AppDatabase::instance().by_name("swaptions"));

  std::deque<validate::DigestMonitor> monitors(2);
  std::vector<fleet::FleetJob> jobs(2);
  for (std::size_t i = 0; i < 2; ++i) {
    jobs[i].platform = &platform;
    jobs[i].workload = &w;
    jobs[i].config.sim.integrator = ThermalIntegrator::Exponential;
    jobs[i].config.sim.fleet_batch = 2;  // the flag of record
    jobs[i].config.max_duration_s = 600.0;
    jobs[i].config.monitor = &monitors[i];
    jobs[i].make_governor = [](npu::InferenceAggregator*) {
      return make_gts_ondemand();
    };
  }
  const std::vector<ExperimentResult> results =
      fleet::run_experiments(jobs, {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].apps_completed, 1u);
  EXPECT_EQ(monitors[0].digest(), monitors[1].digest());
}

}  // namespace
}  // namespace topil
