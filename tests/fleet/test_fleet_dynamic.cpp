// Dynamic fleet membership (the governor server's shard engine): lanes
// attached mid-run, detached mid-run, and compacted away must never
// perturb their batch-mates — every surviving lane's digest stays
// bit-identical to the same simulation run alone (DESIGN.md §10 extended
// to join/leave churn).

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "scenario/scenario_spec.hpp"
#include "server/device_scenario.hpp"
#include "sim/fleet/fleet_engine.hpp"
#include "validate/digest_monitor.hpp"

namespace topil {
namespace {

constexpr std::uint64_t kSeed = 77;
constexpr std::uint64_t kPolicySeed = 3;

/// A self-contained lane: one synthetic device scenario with its sim,
/// governor, digest monitor, and scalar-loop-head pre_tick.
struct TestDevice {
  scenario::ScenarioSpec spec;
  std::unique_ptr<scenario::MaterializedScenario> mat;
  std::unique_ptr<SystemSim> sim;
  std::unique_ptr<Governor> governor;
  validate::DigestMonitor monitor;
  std::size_t next_arrival = 0;
  std::size_t lane = fleet::FleetEngine::kRemovedLane;

  explicit TestDevice(std::uint64_t id, double duration_s = 1.0) {
    server::DeviceScenarioOptions opts;
    opts.max_duration_s = duration_s;
    opts.num_apps = 2;
    opts.governor = "gts-powersave";  // NPU-free: isolates engine churn
    spec = server::make_device_scenario(kSeed, id, opts);
    mat = std::make_unique<scenario::MaterializedScenario>(
        scenario::materialize(spec));
    mat->sim.integrator = ThermalIntegrator::Exponential;
    sim = std::make_unique<SystemSim>(mat->platform, mat->cooling, mat->sim);
    sim->attach_monitor(&monitor);
    governor = server::make_device_governor(spec, mat->platform, kPolicySeed,
                                            nullptr);
    governor->reset(*sim);
  }

  bool pre_tick() {
    if (sim->now() >= mat->max_duration_s) return false;
    const auto& items = mat->workload.items();
    while (next_arrival < items.size() &&
           items[next_arrival].arrival_time <= sim->now() + 1e-9) {
      const WorkloadItem& item = items[next_arrival];
      const AppSpec& app = Workload::app_of(item);
      sim->spawn(app, item.qos_target_ips,
                 governor->place(*sim, app, item.qos_target_ips));
      ++next_arrival;
    }
    if (next_arrival == items.size() && sim->num_running() == 0) return false;
    governor->tick(*sim);
    return true;
  }

  fleet::FleetEngine::Lane as_lane() {
    fleet::FleetEngine::Lane lane;
    lane.sim = sim.get();
    lane.pre_tick = [this](SystemSim&) { return pre_tick(); };
    return lane;
  }
};

/// Digest of device `id` run alone to completion.
std::uint64_t solo_digest(std::uint64_t id, double duration_s = 1.0) {
  TestDevice device(id, duration_s);
  fleet::FleetEngine engine;
  device.lane = engine.attach_lane(device.as_lane());
  engine.run();
  return device.monitor.digest();
}

TEST(FleetDynamic, StaggeredAttachMatchesSoloRuns) {
  fleet::FleetEngine engine;
  std::deque<TestDevice> devices;

  // Lane 0 starts alone; the rest join every 40 fleet ticks.
  devices.emplace_back(0);
  devices.back().lane = engine.attach_lane(devices.back().as_lane());
  std::size_t next_id = 1;
  while (engine.active_lanes() > 0) {
    for (std::size_t t = 0; t < 40 && engine.step() > 0; ++t) {
    }
    if (next_id < 4) {
      devices.emplace_back(next_id);
      devices.back().lane = engine.attach_lane(devices.back().as_lane());
      ++next_id;
    }
  }
  ASSERT_EQ(devices.size(), 4u);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    EXPECT_EQ(devices[i].monitor.digest(), solo_digest(i)) << "device " << i;
    EXPECT_GT(devices[i].monitor.ticks(), 0u) << "device " << i;
  }
}

TEST(FleetDynamic, DetachLeavesBatchMatesBitIdentical) {
  fleet::FleetEngine engine;
  std::deque<TestDevice> devices;
  for (std::uint64_t id = 0; id < 3; ++id) {
    devices.emplace_back(id);
    devices.back().lane = engine.attach_lane(devices.back().as_lane());
  }
  for (std::size_t t = 0; t < 30; ++t) engine.step();
  ASSERT_TRUE(engine.lane_active(devices[1].lane));
  engine.detach_lane(devices[1].lane);
  EXPECT_FALSE(engine.lane_active(devices[1].lane));
  const std::uint64_t frozen = devices[1].monitor.digest();
  engine.run();

  EXPECT_EQ(devices[0].monitor.digest(), solo_digest(0));
  EXPECT_EQ(devices[2].monitor.digest(), solo_digest(2));
  // The detached lane was never stepped again.
  EXPECT_EQ(devices[1].monitor.digest(), frozen);
  EXPECT_EQ(devices[1].monitor.ticks(), 30u);
}

TEST(FleetDynamic, CompactRemapsSurvivorsAndReclaimsTombstones) {
  fleet::FleetEngine engine;
  std::deque<TestDevice> devices;
  for (std::uint64_t id = 0; id < 4; ++id) {
    devices.emplace_back(id);
    devices.back().lane = engine.attach_lane(devices.back().as_lane());
  }
  for (std::size_t t = 0; t < 10; ++t) engine.step();
  engine.detach_lane(devices[0].lane);
  engine.detach_lane(devices[2].lane);
  EXPECT_EQ(engine.num_lanes(), 4u);
  EXPECT_EQ(engine.active_lanes(), 2u);

  const std::vector<std::size_t> remap = engine.compact();
  ASSERT_EQ(remap.size(), 4u);
  EXPECT_EQ(remap[devices[0].lane], fleet::FleetEngine::kRemovedLane);
  EXPECT_EQ(remap[devices[2].lane], fleet::FleetEngine::kRemovedLane);
  devices[1].lane = remap[devices[1].lane];
  devices[3].lane = remap[devices[3].lane];
  EXPECT_EQ(engine.num_lanes(), 2u);
  // The detached devices' sims can now be destroyed while the engine
  // lives on — compaction must have dropped every pointer to them.
  devices[0].sim.reset();
  devices[2].sim.reset();

  ASSERT_TRUE(engine.lane_active(devices[1].lane));
  ASSERT_TRUE(engine.lane_active(devices[3].lane));
  engine.run();
  EXPECT_EQ(devices[1].monitor.digest(), solo_digest(1));
  EXPECT_EQ(devices[3].monitor.digest(), solo_digest(3));
}

TEST(FleetDynamic, ChurnedEngineServesFreshLanesAfterCompact) {
  // Attach, finish, compact, attach again — the long-lived shard pattern.
  fleet::FleetEngine engine;
  std::deque<TestDevice> generation1;
  for (std::uint64_t id = 0; id < 2; ++id) {
    generation1.emplace_back(id, 0.5);
    generation1.back().lane =
        engine.attach_lane(generation1.back().as_lane());
  }
  engine.run();  // generation 1 retires naturally
  EXPECT_EQ(engine.active_lanes(), 0u);
  engine.compact();
  EXPECT_EQ(engine.num_lanes(), 0u);
  generation1.clear();  // destroy the sims (and their platforms)

  std::deque<TestDevice> generation2;
  for (std::uint64_t id = 10; id < 13; ++id) {
    generation2.emplace_back(id);
    generation2.back().lane = engine.attach_lane(generation2.back().as_lane());
  }
  engine.run();
  for (auto& device : generation2) {
    EXPECT_GT(device.monitor.ticks(), 0u);
  }
  EXPECT_EQ(generation2[0].monitor.digest(), solo_digest(10));
  EXPECT_EQ(generation2[1].monitor.digest(), solo_digest(11));
  EXPECT_EQ(generation2[2].monitor.digest(), solo_digest(12));
}

TEST(FleetDynamic, AttachedLanesBatchThermals) {
  fleet::FleetEngine engine;
  std::deque<TestDevice> devices;
  for (std::uint64_t id = 0; id < 3; ++id) {
    devices.emplace_back(id, 0.5);
    devices.back().lane = engine.attach_lane(devices.back().as_lane());
  }
  engine.run();
  // Exponential-integrator lanes attached dynamically still go through
  // the batched slab kernel, not the scalar fallback.
  EXPECT_GT(engine.batched_thermal_lane_ticks(), 0u);
  EXPECT_EQ(engine.scalar_thermal_lane_ticks(), 0u);
}

}  // namespace
}  // namespace topil
