#include "npu/npu_device.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::npu {
namespace {

nn::Mlp small_model() {
  nn::Topology t;
  t.inputs = 21;
  t.hidden = {64, 64, 64, 64};
  t.outputs = 8;
  nn::Mlp model(t);
  model.init(3);
  return model;
}

nn::Matrix random_batch(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  nn::Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return m;
}

TEST(CompiledModel, QuantizationIsCloseButNotExact) {
  const nn::Mlp model = small_model();
  const CompiledModel compiled = CompiledModel::compile(model);
  const nn::Matrix x = random_batch(8, 21, 5);
  const nn::Matrix exact = model.predict(x);
  const nn::Matrix quant = compiled.infer(x);
  double max_err = 0.0;
  bool any_diff = false;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double err = std::abs(exact.data()[i] - quant.data()[i]);
    max_err = std::max(max_err, err);
    any_diff |= (exact.data()[i] != quant.data()[i]);
  }
  EXPECT_TRUE(any_diff) << "fp16 compile should perturb weights";
  EXPECT_LT(max_err, 0.05) << "fp16 error should be small";
}

TEST(CompiledModel, MacCountMatchesTopology) {
  const CompiledModel compiled = CompiledModel::compile(small_model());
  EXPECT_DOUBLE_EQ(compiled.macs_per_row(),
                   21.0 * 64 + 3 * 64.0 * 64 + 64.0 * 8);
  EXPECT_EQ(compiled.num_params(),
            21u * 64 + 64 + 3 * (64 * 64 + 64) + 64 * 8 + 8);
}

TEST(CompiledModel, BatchedInferenceBitIdenticalToRowAtATime) {
  const CompiledModel compiled = CompiledModel::compile(small_model());
  const nn::Matrix batch = random_batch(17, 21, 7);

  nn::Matrix batched;
  nn::InferenceWorkspace ws;
  compiled.infer_batched_into(batch, batched, ws);
  ASSERT_EQ(batched.rows(), 17u);
  ASSERT_EQ(batched.cols(), 8u);

  for (std::size_t r = 0; r < batch.rows(); ++r) {
    nn::Matrix row(1, batch.cols());
    std::copy(batch.row(r), batch.row(r) + batch.cols(), row.row(0));
    const nn::Matrix single = compiled.infer(row);
    for (std::size_t c = 0; c < single.cols(); ++c) {
      // Exact equality: batching must not change the arithmetic.
      ASSERT_EQ(single.at(0, c), batched.at(r, c)) << "row " << r;
    }
  }

  // Workspace reuse across calls does not perturb results either.
  nn::Matrix again;
  compiled.infer_batched_into(batch, again, ws);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched.data()[i], again.data()[i]);
  }
}

TEST(NpuLatency, NearlyConstantInBatchSize) {
  const NpuLatencyModel model;
  const double macs = 14000.0;
  const double t1 = model.latency_s(1, macs);
  const double t16 = model.latency_s(16, macs);
  // One wave of 16 rows: same tile count, negligible extra compute.
  EXPECT_LT(t16 / t1, 1.05);
  // 17 rows needs a second wave.
  EXPECT_GT(model.latency_s(17, macs), t16);
}

TEST(NpuLatency, PaperScaleLatency) {
  // The governor's policy batch must land in the low-millisecond range
  // the paper reports for the migration policy invocation.
  const NpuLatencyModel model;
  const double t = model.latency_s(16, 14144.0);
  EXPECT_GT(t, 0.5e-3);
  EXPECT_LT(t, 3e-3);
}

TEST(CpuInference, ScalesLinearlyAndSlower) {
  const CpuInferenceModel cpu;
  const NpuLatencyModel npu;
  const double macs = 14144.0;
  const double cpu1 = cpu.latency_s(1, macs);
  const double cpu16 = cpu.latency_s(16, macs);
  EXPECT_GT(cpu16, cpu1 * 10.0);  // linear scaling
  EXPECT_GT(cpu16, npu.latency_s(16, macs));  // NPU wins on big batches
}

TEST(NpuDevice, AsyncJobLifecycle) {
  NpuDevice device;
  const CompiledModel compiled = CompiledModel::compile(small_model());
  const nn::Matrix x = random_batch(4, 21, 9);

  const auto job = device.submit(compiled, x, 1.0);
  EXPECT_EQ(device.pending_jobs(), 1u);
  EXPECT_FALSE(device.ready(job, 1.0));
  const double done = device.completion_time(job);
  EXPECT_GT(done, 1.0);
  EXPECT_TRUE(device.ready(job, done));
  EXPECT_THROW(device.take_result(job, 1.0), InvalidArgument);  // too early
  const nn::Matrix result = device.take_result(job, done);
  EXPECT_EQ(result.rows(), 4u);
  EXPECT_EQ(result.cols(), 8u);
  EXPECT_EQ(device.pending_jobs(), 0u);
  EXPECT_THROW(device.ready(job, done), InvalidArgument);  // consumed
}

TEST(NpuDevice, ResultMatchesCompiledInference) {
  NpuDevice device;
  const CompiledModel compiled = CompiledModel::compile(small_model());
  const nn::Matrix x = random_batch(3, 21, 10);
  const auto job = device.submit(compiled, x, 0.0);
  const nn::Matrix expected = compiled.infer(x);
  const nn::Matrix got = device.take_result(job, 1.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(got.data()[i], expected.data()[i]);
  }
}

TEST(NpuDevice, MultipleOutstandingJobs) {
  NpuDevice device;
  const CompiledModel compiled = CompiledModel::compile(small_model());
  const auto a = device.submit(compiled, random_batch(1, 21, 1), 0.0);
  const auto b = device.submit(compiled, random_batch(2, 21, 2), 0.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(device.pending_jobs(), 2u);
  device.take_result(a, 1.0);
  device.take_result(b, 1.0);
  EXPECT_EQ(device.pending_jobs(), 0u);
}

TEST(NpuDevice, RejectsEmptyBatch) {
  NpuDevice device;
  const CompiledModel compiled = CompiledModel::compile(small_model());
  EXPECT_THROW(device.latency_s(0, 100.0), InvalidArgument);
}

}  // namespace
}  // namespace topil::npu
