#include "npu/hiai_ddk.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::hiai {
namespace {

nn::Mlp small_model(std::uint64_t seed) {
  nn::Topology t;
  t.inputs = 4;
  t.hidden = {8};
  t.outputs = 2;
  nn::Mlp model(t);
  model.init(seed);
  return model;
}

TEST(HiaiClient, LoadProcessFetchCycle) {
  auto device = std::make_shared<npu::NpuDevice>();
  AiModelManagerClient client(device);
  EXPECT_FALSE(client.has_model("policy"));
  client.load_model("policy",
                    npu::CompiledModel::compile(small_model(1)));
  EXPECT_TRUE(client.has_model("policy"));

  nn::Matrix x(2, 4, 0.5f);
  const auto job = client.process_async("policy", x, 0.0);
  // Immediately after submission the non-blocking call has no result yet.
  EXPECT_FALSE(client.try_fetch(job, 0.0).has_value());
  const double latency = client.latency_s("policy", 2);
  const auto result = client.try_fetch(job, latency + 1e-9);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->rows(), 2u);
  EXPECT_EQ(result->cols(), 2u);
}

TEST(HiaiClient, UnknownModelThrows) {
  AiModelManagerClient client(std::make_shared<npu::NpuDevice>());
  nn::Matrix x(1, 4, 0.0f);
  EXPECT_THROW(client.process_async("nope", x, 0.0), topil::InvalidArgument);
  EXPECT_THROW(client.latency_s("nope", 1), topil::InvalidArgument);
}

TEST(HiaiClient, ModelsCanBeReplaced) {
  auto device = std::make_shared<npu::NpuDevice>();
  AiModelManagerClient client(device);
  client.load_model("m", npu::CompiledModel::compile(small_model(1)));
  client.load_model("m", npu::CompiledModel::compile(small_model(2)));

  nn::Matrix x(1, 4, 1.0f);
  const auto job = client.process_async("m", x, 0.0);
  const auto result = client.try_fetch(job, 1.0);
  ASSERT_TRUE(result.has_value());
  // The replacement model (seed 2) should be in effect.
  const auto expected =
      npu::CompiledModel::compile(small_model(2)).infer(x);
  EXPECT_FLOAT_EQ(result->at(0, 0), expected.at(0, 0));
}

TEST(HiaiClient, NullDeviceRejected) {
  EXPECT_THROW(AiModelManagerClient(nullptr), topil::InvalidArgument);
}

}  // namespace
}  // namespace topil::hiai
