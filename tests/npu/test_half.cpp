#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/rng.hpp"
#include "npu/compiled_model.hpp"

namespace topil::npu {
namespace {

float float_from_bits(std::uint32_t bits) {
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::uint32_t bits_from_float(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

TEST(Half, ExactValuesRoundTrip) {
  // Values exactly representable in fp16.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Half, RoundingErrorWithinHalfUlp) {
  for (float v : {3.14159f, -2.71828f, 0.1f, 123.456f, -0.9999f}) {
    const float r = half_to_float(float_to_half(v));
    // fp16 has 10 mantissa bits: relative error <= 2^-11.
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 2048.0f + 1e-7f) << v;
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e6f))));
  EXPECT_LT(half_to_float(float_to_half(-1e6f)), 0.0f);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive normal half is 2^-14; below that: subnormals.
  const float tiny = 1.0f / 32768.0f;  // 2^-15, subnormal in fp16
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.01f);
}

TEST(Half, UnderflowFlushesToZero) {
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(1e-12f)), 0.0f);
  // Sign of zero is preserved.
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-1e-12f))));
}

TEST(Half, NanPropagates) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(inf))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-inf))));
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between two representable halves 1.0 and
  // 1 + 2^-10; round-to-even picks 1.0 (even mantissa).
  const float v = 1.0f + 1.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  const float w = 1.0f + 3.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(w)), 1.0f + 2.0f / 1024.0f);
}

TEST(Half, NanPayloadPreserved) {
  // Quiet NaN with payload 0x155 in the top ten mantissa bits: the half
  // keeps those bits, and widening back restores them in the same place.
  const std::uint32_t payload = 0x155u;
  const float nan = float_from_bits(0x7fc00000u | (payload << 13));
  const std::uint16_t h = float_to_half(nan);
  EXPECT_EQ(h & 0x3ffu, 0x200u | payload);
  EXPECT_EQ(h & 0x7c00u, 0x7c00u);

  const float back = half_to_float(h);
  EXPECT_TRUE(std::isnan(back));
  EXPECT_EQ((bits_from_float(back) >> 13) & 0x3ffu, 0x200u | payload);

  // Signaling NaN (quiet bit clear) is quieted but keeps its payload and
  // sign.
  const float snan = float_from_bits(0xff800000u | (payload << 13));
  const std::uint16_t hs = float_to_half(snan);
  EXPECT_EQ(hs, 0x8000u | 0x7c00u | 0x200u | payload);
}

TEST(Half, SubnormalTieRoundsToEven) {
  // 0x33000000 is 2^-25 — exactly halfway between half 0x0000 (zero) and
  // the smallest subnormal half 0x0001 (2^-24). Round-to-nearest-even
  // picks the even mantissa: zero.
  EXPECT_EQ(float_to_half(float_from_bits(0x33000000u)), 0x0000u);
  // One ulp above the halfway point must round up to 0x0001.
  EXPECT_EQ(float_to_half(float_from_bits(0x33000001u)), 0x0001u);
  // And 1.5*2^-24 is halfway between 0x0001 and 0x0002; even is 0x0002.
  EXPECT_EQ(float_to_half(float_from_bits(0x33c00000u)), 0x0002u);
  // Negative halves mirror with the sign bit.
  EXPECT_EQ(float_to_half(float_from_bits(0xb3000001u)), 0x8001u);
}

TEST(Half, RandomRoundTripProperty) {
  // 10k seeded random bit patterns across the whole float space. For every
  // input v with h = float_to_half(v):
  //   1. half_to_float is exact, so re-narrowing must reproduce h exactly
  //      (conversion is idempotent);
  //   2. if v is finite and within half range, the round-trip error is
  //      bounded by the local half ulp.
  Rng rng(20240806);
  constexpr float kMaxHalf = 65504.0f;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16 |
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff));
    const float v = float_from_bits(bits);
    const std::uint16_t h = float_to_half(v);
    const float r = half_to_float(h);

    EXPECT_EQ(float_to_half(r), h) << "bits 0x" << std::hex << bits;
    EXPECT_EQ(std::isnan(v), std::isnan(r)) << "bits 0x" << std::hex << bits;
    if (!std::isnan(v)) {
      EXPECT_EQ(std::signbit(v), std::signbit(r))
          << "bits 0x" << std::hex << bits;
    }
    if (std::isfinite(v) && std::abs(v) <= kMaxHalf) {
      // Ulp spacing: 2^(e-10) in the binade [2^e, 2^(e+1)) of normal
      // halves, 2^-24 in the subnormal range below 2^-14.
      const float ulp = std::abs(v) < 6.103515625e-05f
                            ? 1.0f / 16777216.0f
                            : std::ldexp(1.0f, std::ilogb(v) - 10);
      EXPECT_LE(std::abs(r - v), 0.5f * ulp)
          << "bits 0x" << std::hex << bits;
    }
  }
}

}  // namespace
}  // namespace topil::npu
