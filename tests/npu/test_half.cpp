#include <gtest/gtest.h>

#include <cmath>

#include "npu/compiled_model.hpp"

namespace topil::npu {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  // Values exactly representable in fp16.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Half, RoundingErrorWithinHalfUlp) {
  for (float v : {3.14159f, -2.71828f, 0.1f, 123.456f, -0.9999f}) {
    const float r = half_to_float(float_to_half(v));
    // fp16 has 10 mantissa bits: relative error <= 2^-11.
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 2048.0f + 1e-7f) << v;
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e6f))));
  EXPECT_LT(half_to_float(float_to_half(-1e6f)), 0.0f);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive normal half is 2^-14; below that: subnormals.
  const float tiny = 1.0f / 32768.0f;  // 2^-15, subnormal in fp16
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.01f);
}

TEST(Half, UnderflowFlushesToZero) {
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(1e-12f)), 0.0f);
  // Sign of zero is preserved.
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-1e-12f))));
}

TEST(Half, NanPropagates) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(inf))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-inf))));
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between two representable halves 1.0 and
  // 1 + 2^-10; round-to-even picks 1.0 (even mantissa).
  const float v = 1.0f + 1.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  const float w = 1.0f + 3.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(w)), 1.0f + 2.0f / 1024.0f);
}

}  // namespace
}  // namespace topil::npu
