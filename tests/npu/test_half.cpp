#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/rng.hpp"
#include "npu/compiled_model.hpp"

namespace topil::npu {
namespace {

float float_from_bits(std::uint32_t bits) {
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::uint32_t bits_from_float(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

TEST(Half, ExactValuesRoundTrip) {
  // Values exactly representable in fp16.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Half, RoundingErrorWithinHalfUlp) {
  for (float v : {3.14159f, -2.71828f, 0.1f, 123.456f, -0.9999f}) {
    const float r = half_to_float(float_to_half(v));
    // fp16 has 10 mantissa bits: relative error <= 2^-11.
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 2048.0f + 1e-7f) << v;
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e6f))));
  EXPECT_LT(half_to_float(float_to_half(-1e6f)), 0.0f);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive normal half is 2^-14; below that: subnormals.
  const float tiny = 1.0f / 32768.0f;  // 2^-15, subnormal in fp16
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.01f);
}

TEST(Half, UnderflowFlushesToZero) {
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(1e-12f)), 0.0f);
  // Sign of zero is preserved.
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-1e-12f))));
}

TEST(Half, NanPropagates) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(inf))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-inf))));
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between two representable halves 1.0 and
  // 1 + 2^-10; round-to-even picks 1.0 (even mantissa).
  const float v = 1.0f + 1.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  const float w = 1.0f + 3.0f / 2048.0f;
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(w)), 1.0f + 2.0f / 1024.0f);
}

TEST(Half, NanPayloadPreserved) {
  // Quiet NaN with payload 0x155 in the top ten mantissa bits: the half
  // keeps those bits, and widening back restores them in the same place.
  const std::uint32_t payload = 0x155u;
  const float nan = float_from_bits(0x7fc00000u | (payload << 13));
  const std::uint16_t h = float_to_half(nan);
  EXPECT_EQ(h & 0x3ffu, 0x200u | payload);
  EXPECT_EQ(h & 0x7c00u, 0x7c00u);

  const float back = half_to_float(h);
  EXPECT_TRUE(std::isnan(back));
  EXPECT_EQ((bits_from_float(back) >> 13) & 0x3ffu, 0x200u | payload);

  // Signaling NaN (quiet bit clear) is quieted but keeps its payload and
  // sign.
  const float snan = float_from_bits(0xff800000u | (payload << 13));
  const std::uint16_t hs = float_to_half(snan);
  EXPECT_EQ(hs, 0x8000u | 0x7c00u | 0x200u | payload);
}

TEST(Half, SubnormalTieRoundsToEven) {
  // 0x33000000 is 2^-25 — exactly halfway between half 0x0000 (zero) and
  // the smallest subnormal half 0x0001 (2^-24). Round-to-nearest-even
  // picks the even mantissa: zero.
  EXPECT_EQ(float_to_half(float_from_bits(0x33000000u)), 0x0000u);
  // One ulp above the halfway point must round up to 0x0001.
  EXPECT_EQ(float_to_half(float_from_bits(0x33000001u)), 0x0001u);
  // And 1.5*2^-24 is halfway between 0x0001 and 0x0002; even is 0x0002.
  EXPECT_EQ(float_to_half(float_from_bits(0x33c00000u)), 0x0002u);
  // Negative halves mirror with the sign bit.
  EXPECT_EQ(float_to_half(float_from_bits(0xb3000001u)), 0x8001u);
}

TEST(Half, RandomRoundTripProperty) {
  // 10k seeded random bit patterns across the whole float space. For every
  // input v with h = float_to_half(v):
  //   1. half_to_float is exact, so re-narrowing must reproduce h exactly
  //      (conversion is idempotent);
  //   2. if v is finite and within half range, the round-trip error is
  //      bounded by the local half ulp.
  Rng rng(20240806);
  constexpr float kMaxHalf = 65504.0f;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16 |
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff));
    const float v = float_from_bits(bits);
    const std::uint16_t h = float_to_half(v);
    const float r = half_to_float(h);

    EXPECT_EQ(float_to_half(r), h) << "bits 0x" << std::hex << bits;
    EXPECT_EQ(std::isnan(v), std::isnan(r)) << "bits 0x" << std::hex << bits;
    if (!std::isnan(v)) {
      EXPECT_EQ(std::signbit(v), std::signbit(r))
          << "bits 0x" << std::hex << bits;
    }
    if (std::isfinite(v) && std::abs(v) <= kMaxHalf) {
      // Ulp spacing: 2^(e-10) in the binade [2^e, 2^(e+1)) of normal
      // halves, 2^-24 in the subnormal range below 2^-14.
      const float ulp = std::abs(v) < 6.103515625e-05f
                            ? 1.0f / 16777216.0f
                            : std::ldexp(1.0f, std::ilogb(v) - 10);
      EXPECT_LE(std::abs(r - v), 0.5f * ulp)
          << "bits 0x" << std::hex << bits;
    }
  }
}

TEST(Half, SaturationBoundaryRoundsToNearestEven) {
  // Values in (65504, 65520) are nearer to the largest finite half than to
  // the (virtual) next binade, so they must saturate to 65504 — not jump
  // to infinity.
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(65519.0f)), 65504.0f);
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(
                      std::nextafter(65504.0f, 1e9f))),
                  65504.0f);
  // 65520 is exactly halfway; the odd mantissa 0x3ff rounds up, carrying
  // into the exponent: IEEE round-to-nearest-even overflows to infinity.
  EXPECT_EQ(float_to_half(65520.0f), 0x7c00u);
  EXPECT_EQ(float_to_half(-65520.0f), 0xfc00u);
  // One ulp below the halfway point still saturates.
  EXPECT_EQ(float_to_half(std::nextafter(65520.0f, 0.0f)), 0x7bffu);
}

TEST(Half, SubnormalNormalBoundaryIsExact) {
  // Largest subnormal half: (1023/1024) * 2^-14.
  const float largest_subnormal = 1023.0f / 1024.0f * 6.103515625e-05f;
  EXPECT_EQ(float_to_half(largest_subnormal), 0x03ffu);
  EXPECT_FLOAT_EQ(half_to_float(0x03ffu), largest_subnormal);
  // Smallest normal half: 2^-14.
  EXPECT_EQ(float_to_half(6.103515625e-05f), 0x0400u);
  EXPECT_FLOAT_EQ(half_to_float(0x0400u), 6.103515625e-05f);
  // Smallest subnormal half: 2^-24.
  EXPECT_EQ(float_to_half(float_from_bits(0x33800000u)), 0x0001u);
  EXPECT_FLOAT_EQ(half_to_float(0x0001u), float_from_bits(0x33800000u));
}

TEST(Half, NegativeZeroPreserved) {
  EXPECT_EQ(float_to_half(-0.0f), 0x8000u);
  EXPECT_EQ(float_to_half(0.0f), 0x0000u);
  EXPECT_TRUE(std::signbit(half_to_float(0x8000u)));
  EXPECT_EQ(bits_from_float(half_to_float(0x8000u)), 0x80000000u);
}

TEST(Half, ExhaustiveWidenNarrowIdentity) {
  // half_to_float is exact, so narrowing its result must reproduce every
  // one of the 65536 half patterns — except signaling NaNs, which are
  // quieted (the quiet bit 0x200 is forced) with payload preserved.
  for (std::uint32_t h = 0; h <= 0xffffu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const float wide = half_to_float(half);
    const std::uint16_t back = float_to_half(wide);
    const bool is_nan = (h & 0x7c00u) == 0x7c00u && (h & 0x03ffu) != 0;
    const std::uint16_t expected =
        is_nan ? static_cast<std::uint16_t>(h | 0x200u) : half;
    ASSERT_EQ(back, expected) << "half 0x" << std::hex << h;
  }
}

TEST(CompiledModel, BatchedEqualsSingleForRandomBatchSizes) {
  // Property: for random batch sizes (including 1 and sizes straddling
  // the blocked-matmul tile width), infer_batched_into is bit-identical
  // to row-at-a-time infer with a fresh workspace each round.
  nn::Topology t;
  t.inputs = 13;
  t.hidden = {32, 24};
  t.outputs = 5;
  nn::Mlp model(t);
  model.init(77);
  const CompiledModel compiled = CompiledModel::compile(model);

  Rng rng(123);
  nn::InferenceWorkspace ws;
  nn::Matrix batched;
  for (int round = 0; round < 20; ++round) {
    const std::size_t rows =
        static_cast<std::size_t>(rng.uniform_int(1, 70));
    nn::Matrix batch(rows, t.inputs);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }

    compiled.infer_batched_into(batch, batched, ws);
    ASSERT_EQ(batched.rows(), rows);
    ASSERT_EQ(batched.cols(), t.outputs);

    for (std::size_t r = 0; r < rows; ++r) {
      nn::Matrix row(1, t.inputs);
      std::copy(batch.row(r), batch.row(r) + t.inputs, row.row(0));
      const nn::Matrix single = compiled.infer(row);
      for (std::size_t c = 0; c < t.outputs; ++c) {
        ASSERT_EQ(single.at(0, c), batched.at(r, c))
            << "round " << round << " rows " << rows << " row " << r;
      }
    }
  }
}

}  // namespace
}  // namespace topil::npu
