#include "npu/inference_backend.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "npu/batch_aggregator.hpp"
#include "npu/npu_device.hpp"

namespace topil::npu {
namespace {

std::uint32_t bits_of(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void expect_bit_identical(const nn::Matrix& got, const nn::Matrix& want,
                          const std::string& label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
        << label << " element " << i;
  }
}

nn::Mlp make_model(const nn::Topology& topology, std::uint64_t seed) {
  nn::Mlp model(topology);
  model.init(seed);
  return model;
}

nn::Matrix random_batch(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  nn::Matrix batch(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
  }
  return batch;
}

TEST(CpuSimdBackend, BitIdenticalToScalarReference) {
  Rng shapes(42);
  CpuSimdBackend simd;
  for (int trial = 0; trial < 10; ++trial) {
    nn::Topology topology;
    topology.inputs = static_cast<std::size_t>(shapes.uniform_int(1, 30));
    const int depth = shapes.uniform_int(1, 4);
    for (int d = 0; d < depth; ++d) {
      topology.hidden.push_back(
          static_cast<std::size_t>(shapes.uniform_int(1, 64)));
    }
    topology.outputs = static_cast<std::size_t>(shapes.uniform_int(1, 16));
    const CompiledModel compiled =
        CompiledModel::compile(make_model(topology, 100 + trial));

    // 1-row batches are the urgent-single-query case; the rest are random.
    for (const std::size_t rows :
         {std::size_t{1},
          static_cast<std::size_t>(shapes.uniform_int(2, 70))}) {
      const nn::Matrix input = random_batch(rows, topology.inputs,
                                            7000 + trial);
      nn::Matrix want;
      nn::InferenceWorkspace ref_ws;
      compiled.infer_batched_into(input, want, ref_ws);

      nn::Matrix got;
      nn::InferenceWorkspace simd_ws;
      simd.infer(compiled, input, got, simd_ws);
      expect_bit_identical(got, want,
                           "trial " + std::to_string(trial) + " rows " +
                               std::to_string(rows));
    }
  }
}

TEST(CpuSimdBackend, AdversarialFp16InputsMatchBitwise) {
  // Subnormal, signed-zero and fp16-saturating inputs (PR 5's edge-case
  // families) through a compiled model: the fused path must agree with the
  // scalar reference on every bit.
  const nn::Topology topology{13, {32, 24}, 5};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 3));
  const float specials[] = {0.0f,      -0.0f,   5.96e-8f, -5.96e-8f,
                            6.1e-5f,   -6.1e-5f, 65504.0f, -65504.0f,
                            65520.0f,  1e-40f,  -1e-40f,  1.0f};
  nn::Matrix input(9, topology.inputs);
  Rng rng(11);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = specials[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std::size(specials)) - 1))];
  }

  nn::Matrix want;
  nn::InferenceWorkspace ref_ws;
  compiled.infer_batched_into(input, want, ref_ws);

  CpuSimdBackend simd;
  nn::Matrix got;
  nn::InferenceWorkspace simd_ws;
  simd.infer(compiled, input, got, simd_ws);
  expect_bit_identical(got, want, "adversarial inputs");
}

TEST(CpuSimdBackend, RepeatedInferenceDoesZeroReWidening) {
  const nn::Topology topology{21, {64, 64, 64, 64}, 8};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 9));
  CpuSimdBackend simd;
  EXPECT_EQ(simd.widen_events(), 0u);
  EXPECT_EQ(simd.cached_models(), 0u);

  nn::Matrix out;
  nn::InferenceWorkspace ws;
  simd.infer(compiled, random_batch(16, topology.inputs, 1), out, ws);
  const std::uint64_t after_first = simd.widen_events();
  EXPECT_EQ(after_first, topology.num_layers());
  EXPECT_EQ(simd.cached_models(), 1u);

  for (int i = 0; i < 20; ++i) {
    simd.infer(compiled, random_batch(16, topology.inputs, 2 + i), out, ws);
  }
  EXPECT_EQ(simd.widen_events(), after_first)
      << "steady-state inference must not re-widen cached weights";
  EXPECT_EQ(simd.rows_inferred(), 21u * 16u);

  // A different model (different fingerprint) widens its own layers once.
  const CompiledModel other = CompiledModel::compile(make_model(topology, 10));
  simd.infer(other, random_batch(4, topology.inputs, 99), out, ws);
  EXPECT_EQ(simd.widen_events(), after_first + topology.num_layers());
  EXPECT_EQ(simd.cached_models(), 2u);
}

TEST(CpuSimdBackend, RejectsEmptyBatch) {
  const nn::Topology topology{4, {8}, 2};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 1));
  CpuSimdBackend simd;
  nn::Matrix empty;
  nn::Matrix out;
  nn::InferenceWorkspace ws;
  EXPECT_THROW(simd.infer(compiled, empty, out, ws), InvalidArgument);
}

TEST(AutoBackend, RoutesByBatchSize) {
  const nn::Topology topology{6, {16}, 3};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 5));
  NpuBackend scalar;
  CpuSimdBackend simd;
  AutoBackend auto_backend(scalar, simd);

  nn::Matrix out;
  nn::InferenceWorkspace ws;
  const std::size_t threshold = AutoBackend::small_batch_threshold();

  auto_backend.infer(compiled, random_batch(threshold - 1, topology.inputs, 1),
                     out, ws);
  EXPECT_EQ(simd.rows_inferred(), 0u)
      << "small batches must stay on the scalar engine";

  auto_backend.infer(compiled, random_batch(threshold, topology.inputs, 2),
                     out, ws);
  EXPECT_EQ(simd.rows_inferred(), threshold)
      << "large batches must run on the SIMD engine";
}

TEST(BackendKindTest, ParseAndNameRoundTrip) {
  for (const BackendKind kind :
       {BackendKind::Npu, BackendKind::CpuSimd, BackendKind::Auto}) {
    EXPECT_EQ(parse_backend_kind(backend_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_backend_kind("gpu"), InvalidArgument);
  EXPECT_THROW(parse_backend_kind(""), InvalidArgument);
}

TEST(BackendKindTest, ScopedBackendRestores) {
  const BackendKind before = active_backend();
  {
    ScopedBackend scoped(BackendKind::CpuSimd);
    EXPECT_EQ(active_backend(), BackendKind::CpuSimd);
    {
      ScopedBackend nested(BackendKind::Auto);
      EXPECT_EQ(active_backend(), BackendKind::Auto);
    }
    EXPECT_EQ(active_backend(), BackendKind::CpuSimd);
  }
  EXPECT_EQ(active_backend(), before);
}

TEST(DispatchInference, DeviceResultsIdenticalAcrossBackends) {
  // An NpuDevice submit/take_result round trip — the governor's path —
  // must produce bit-identical results and identical completion times no
  // matter which backend is active (digest-safety at the device level).
  const nn::Topology topology{21, {64, 64, 64, 64}, 8};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 21));
  const nn::Matrix input = random_batch(20, topology.inputs, 404);

  nn::Matrix reference;
  double reference_done = 0.0;
  for (const BackendKind kind :
       {BackendKind::Npu, BackendKind::CpuSimd, BackendKind::Auto}) {
    ScopedBackend scoped(kind);
    NpuDevice device;
    const auto job = device.submit(compiled, input, 1.0);
    const double done = device.completion_time(job);
    const nn::Matrix result = device.take_result(job, done);
    if (kind == BackendKind::Npu) {
      reference = result;
      reference_done = done;
    } else {
      expect_bit_identical(result, reference, backend_kind_name(kind));
      EXPECT_EQ(done, reference_done) << backend_kind_name(kind);
    }
  }
}

TEST(DispatchInference, AggregatedFlushIdenticalAcrossBackends) {
  const nn::Topology topology{11, {32, 32}, 6};
  const CompiledModel compiled = CompiledModel::compile(make_model(topology, 77));

  auto run = [&](BackendKind kind) {
    ScopedBackend scoped(kind);
    InferenceAggregator aggregator;
    nn::Matrix out_a;
    nn::Matrix out_b;
    aggregator.enqueue(compiled, random_batch(5, topology.inputs, 1), &out_a);
    aggregator.enqueue(compiled, random_batch(9, topology.inputs, 2), &out_b);
    aggregator.flush();
    return std::pair<nn::Matrix, nn::Matrix>(out_a, out_b);
  };

  const auto npu = run(BackendKind::Npu);
  const auto simd = run(BackendKind::CpuSimd);
  const auto autod = run(BackendKind::Auto);
  expect_bit_identical(simd.first, npu.first, "cpu_simd slot a");
  expect_bit_identical(simd.second, npu.second, "cpu_simd slot b");
  expect_bit_identical(autod.first, npu.first, "auto slot a");
  expect_bit_identical(autod.second, npu.second, "auto slot b");
}

}  // namespace
}  // namespace topil::npu
