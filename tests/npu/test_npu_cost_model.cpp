#include "npu/npu_cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "npu/compiled_model.hpp"
#include "npu/npu_device.hpp"

namespace topil::npu {
namespace {

const nn::Topology kPaperTopology{21, {64, 64, 64, 64}, 8};

TEST(NpuCostModel, MonotoneNonDecreasingInBatchSize) {
  const NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  double prev = 0.0;
  for (std::size_t b = 1; b <= 200; ++b) {
    const double latency = cost.latency_s(kPaperTopology, b);
    EXPECT_GE(latency, prev) << "batch " << b;
    prev = latency;
  }
}

TEST(NpuCostModel, MonotoneNonDecreasingInLayerWidth) {
  const NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  for (const std::size_t batch : {std::size_t{1}, std::size_t{16},
                                  std::size_t{64}}) {
    double prev = 0.0;
    for (const std::size_t width :
         {std::size_t{8}, std::size_t{16}, std::size_t{32}, std::size_t{64},
          std::size_t{128}, std::size_t{256}}) {
      const nn::Topology topology{21, {width, width, width, width}, 8};
      const double latency = cost.latency_s(topology, batch);
      EXPECT_GE(latency, prev) << "width " << width << " batch " << batch;
      prev = latency;
    }
  }
}

TEST(NpuCostModel, LatencyPerRowNonIncreasingOverDoublingBatches) {
  // Fig. 12's property: along the benchmark's batch axis (powers of two),
  // amortizing the fixed overhead and the per-batch weight traffic makes
  // the cost per inferred row fall (or stay flat), never rise.
  const NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  double prev_per_row = cost.latency_s(kPaperTopology, 1);
  for (std::size_t b = 2; b <= 512; b *= 2) {
    const double per_row =
        cost.latency_s(kPaperTopology, b) / static_cast<double>(b);
    EXPECT_LE(per_row, prev_per_row) << "batch " << b;
    prev_per_row = per_row;
  }
}

TEST(NpuCostModel, FromLegacyStaysInPaperLatencyRange) {
  // The per-layer model must land where the legacy constant model put the
  // paper-scale policy net: low single-digit milliseconds at batch 16.
  const NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  const double latency = cost.latency_s(kPaperTopology, 16);
  EXPECT_GT(latency, 0.5e-3);
  EXPECT_LT(latency, 3.0e-3);

  // A caller-configured fixed overhead (the governor deferral tests use
  // 0.7 s) must carry through from_legacy.
  NpuLatencyModel slow;
  slow.fixed_s = 0.7;
  EXPECT_GT(NpuCostModel::from_legacy(slow).latency_s(kPaperTopology, 4),
            0.7);
}

TEST(NpuCostModel, RejectsEmptyBatchAndEmptyLayer) {
  const NpuCostModel cost;
  EXPECT_THROW(cost.latency_s(kPaperTopology, 0), InvalidArgument);
  EXPECT_THROW(cost.layer_latency_s(0, 4, 4), InvalidArgument);
  EXPECT_THROW(cost.layer_latency_s(1, 0, 4), InvalidArgument);
  EXPECT_THROW(cost.layer_latency_s(1, 4, 0), InvalidArgument);
}

TEST(NpuCostModel, WeightTrafficIsAmortizedAcrossTheBatch) {
  // Doubling the batch must NOT double the latency while the batch still
  // fits in one wave: fixed overhead and weight streaming are per-batch.
  const NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  const double t1 = cost.latency_s(kPaperTopology, 1);
  const double t16 = cost.latency_s(kPaperTopology, 16);
  EXPECT_LT(t16, 1.05 * t1) << "batch 16 should cost nearly the same as "
                               "batch 1 (the paper's constant-overhead "
                               "observation)";
}

TEST(NpuDeviceQueueing, SerializesJobsBehindBusyHorizon) {
  const nn::Mlp network = [] {
    nn::Mlp m(kPaperTopology);
    m.init(1);
    return m;
  }();
  const CompiledModel compiled = CompiledModel::compile(network);
  nn::Matrix input(4, kPaperTopology.inputs);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = 0.25f;
  }

  NpuCostModel cost = NpuCostModel::from_legacy(NpuLatencyModel{});
  const double service = cost.latency_s(kPaperTopology, input.rows());

  // Default (queueing off): concurrent tenants overlap freely.
  {
    NpuDevice device{cost};
    const auto a = device.submit(compiled, input, 1.0);
    const auto b = device.submit(compiled, input, 1.0);
    EXPECT_DOUBLE_EQ(device.completion_time(a), 1.0 + service);
    EXPECT_DOUBLE_EQ(device.completion_time(b), 1.0 + service);
  }

  // Queueing on: the second tenant waits for the first to drain.
  cost.queueing = true;
  {
    NpuDevice device{cost};
    const auto a = device.submit(compiled, input, 1.0);
    const auto b = device.submit(compiled, input, 1.0);
    EXPECT_DOUBLE_EQ(device.completion_time(a), 1.0 + service);
    EXPECT_DOUBLE_EQ(device.completion_time(b), 1.0 + 2.0 * service);
    // After the queue drains, a later job starts immediately again.
    const double idle = device.completion_time(b) + 1.0;
    const auto c = device.submit(compiled, input, idle);
    EXPECT_DOUBLE_EQ(device.completion_time(c), idle + service);
  }
}

TEST(NpuDeviceCostModel, ModelAwareLatencyMatchesSubmitDoneAt) {
  const nn::Mlp network = [] {
    nn::Mlp m(kPaperTopology);
    m.init(2);
    return m;
  }();
  const CompiledModel compiled = CompiledModel::compile(network);
  nn::Matrix input(7, kPaperTopology.inputs);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = 0.5f;
  }

  NpuDevice device;
  const double now = 3.25;
  const auto job = device.submit(compiled, input, now);
  // (now + latency) - now re-rounds, so allow the device's own ready()
  // epsilon; the hiai facade pin (test_hiai) checks the polling contract.
  EXPECT_NEAR(device.completion_time(job) - now,
              device.latency_s(compiled, input.rows()), 1e-12);
}

}  // namespace
}  // namespace topil::npu
