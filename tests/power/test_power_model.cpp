#include "power/power_model.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  PowerModel model_{platform_};

  std::vector<std::size_t> levels(std::size_t l, std::size_t b) const {
    return {l, b};
  }
  std::vector<double> uniform_activity(double a) const {
    return std::vector<double>(platform_.num_cores(), a);
  }
  std::vector<double> uniform_temp(double t) const {
    return std::vector<double>(platform_.num_cores(), t);
  }
};

TEST_F(PowerModelTest, DynamicPowerScalesWithFrequencyAndVoltageSquared) {
  const auto& vf = platform_.cluster(kBigCluster).vf;
  const double p_low = model_.core_dynamic_w(kBigCluster, 0, 1.0);
  const double p_high =
      model_.core_dynamic_w(kBigCluster, vf.num_levels() - 1, 1.0);
  const double expected_ratio =
      (vf.at(vf.num_levels() - 1).voltage_v * vf.at(vf.num_levels() - 1).voltage_v *
       vf.at(vf.num_levels() - 1).freq_ghz) /
      (vf.at(0).voltage_v * vf.at(0).voltage_v * vf.at(0).freq_ghz);
  EXPECT_NEAR(p_high / p_low, expected_ratio, 1e-9);
}

TEST_F(PowerModelTest, DynamicPowerLinearInActivity) {
  const double half = model_.core_dynamic_w(kBigCluster, 3, 0.5);
  const double full = model_.core_dynamic_w(kBigCluster, 3, 1.0);
  EXPECT_NEAR(full / half, 2.0, 1e-9);
}

TEST_F(PowerModelTest, IdleCoreKeepsResidualDynamicPower) {
  const double idle = model_.core_dynamic_w(kLittleCluster, 2, 0.0);
  const double floor =
      model_.core_dynamic_w(kLittleCluster, 2, PowerModel::kIdleActivityFloor);
  EXPECT_DOUBLE_EQ(idle, floor);
  EXPECT_GT(idle, 0.0);
}

TEST_F(PowerModelTest, LeakageGrowsWithTemperature) {
  const double cool = model_.core_leakage_w(kBigCluster, 4, 30.0);
  const double hot = model_.core_leakage_w(kBigCluster, 4, 80.0);
  EXPECT_GT(hot, cool);
  // Linear slope: g1 * V per degree.
  const auto& spec = platform_.cluster(kBigCluster);
  const double expected_slope =
      spec.power.leak_g1_w_per_v_k * spec.vf.at(4).voltage_v;
  EXPECT_NEAR((hot - cool) / 50.0, expected_slope, 1e-9);
}

TEST_F(PowerModelTest, LeakageNeverNegative) {
  EXPECT_GE(model_.core_leakage_w(kLittleCluster, 0, -40.0), 0.0);
}

TEST_F(PowerModelTest, BigClusterAtPeakRealisticPowerRange) {
  // All four big cores fully active at peak should land in the mobile-SoC
  // ballpark: several watts, not tens.
  const std::size_t top = platform_.cluster(kBigCluster).vf.num_levels() - 1;
  std::vector<double> activity(8, 0.0);
  for (CoreId c = 4; c < 8; ++c) activity[c] = 1.0;
  const PowerBreakdown p = model_.compute(levels(0, top), activity,
                                          uniform_temp(60.0), false);
  double big_total = 0.0;
  for (CoreId c = 4; c < 8; ++c) big_total += p.core_w[c];
  EXPECT_GT(big_total, 4.0);
  EXPECT_LT(big_total, 12.0);
}

TEST_F(PowerModelTest, BreakdownShapesAndTotal) {
  const PowerBreakdown p = model_.compute(
      levels(2, 3), uniform_activity(0.5), uniform_temp(45.0), true);
  EXPECT_EQ(p.core_w.size(), 8u);
  EXPECT_EQ(p.uncore_w.size(), 2u);
  EXPECT_DOUBLE_EQ(p.npu_w, platform_.npu().power_active_w);
  double manual = p.npu_w;
  for (double w : p.core_w) manual += w;
  for (double w : p.uncore_w) manual += w;
  EXPECT_NEAR(p.total_w(), manual, 1e-12);
}

TEST_F(PowerModelTest, NpuIdleVsActive) {
  const PowerBreakdown idle = model_.compute(
      levels(0, 0), uniform_activity(0.0), uniform_temp(25.0), false);
  const PowerBreakdown active = model_.compute(
      levels(0, 0), uniform_activity(0.0), uniform_temp(25.0), true);
  EXPECT_DOUBLE_EQ(idle.npu_w, platform_.npu().power_idle_w);
  EXPECT_GT(active.npu_w, idle.npu_w);
}

TEST_F(PowerModelTest, UncorePowerTracksClusterActivity) {
  std::vector<double> one_busy(8, 0.0);
  one_busy[4] = 1.0;
  std::vector<double> all_busy(8, 0.0);
  for (CoreId c = 4; c < 8; ++c) all_busy[c] = 1.0;
  const PowerBreakdown p1 = model_.compute(levels(0, 5), one_busy,
                                           uniform_temp(45.0), false);
  const PowerBreakdown p4 = model_.compute(levels(0, 5), all_busy,
                                           uniform_temp(45.0), false);
  EXPECT_GT(p4.uncore_w[kBigCluster], p1.uncore_w[kBigCluster]);
}

TEST_F(PowerModelTest, ValidatesInputSizes) {
  EXPECT_THROW(model_.compute({0}, uniform_activity(0.0),
                              uniform_temp(25.0), false),
               InvalidArgument);
  EXPECT_THROW(model_.compute(levels(0, 0), {1.0}, uniform_temp(25.0),
                              false),
               InvalidArgument);
  EXPECT_THROW(model_.compute(levels(0, 0), uniform_activity(0.0), {25.0},
                              false),
               InvalidArgument);
  std::vector<double> negative = uniform_activity(0.0);
  negative[0] = -0.1;
  EXPECT_THROW(model_.compute(levels(0, 0), negative, uniform_temp(25.0),
                              false),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
