#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil::nn {
namespace {

TEST(DenseLayer, ForwardComputesAffineMap) {
  DenseLayer layer(2, 3);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5, 1].
  float w[] = {1, 2, 3, 4, 5, 6};
  for (std::size_t i = 0; i < 6; ++i) layer.weights().data()[i] = w[i];
  layer.bias() = {0.5f, -0.5f, 1.0f};

  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  const Matrix y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 8 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 10 - 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 3 + 12 + 1.0f);
}

TEST(DenseLayer, InitBoundsFollowGlorot) {
  DenseLayer layer(64, 64);
  Rng rng(1);
  layer.init(rng);
  const double limit = std::sqrt(6.0 / 128.0);
  bool nonzero = false;
  for (std::size_t i = 0; i < layer.weights().size(); ++i) {
    const float v = layer.weights().data()[i];
    EXPECT_LE(std::abs(v), limit + 1e-6);
    nonzero |= (v != 0.0f);
  }
  EXPECT_TRUE(nonzero);
  for (float b : layer.bias()) EXPECT_FLOAT_EQ(b, 0.0f);
}

// Finite-difference gradient check — the canonical correctness test for
// backprop. Loss = sum(y).
TEST(DenseLayer, GradientsMatchFiniteDifferences) {
  DenseLayer layer(3, 2);
  Rng rng(7);
  layer.init(rng);
  Matrix x(2, 3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }

  auto loss = [&]() {
    const Matrix y = layer.forward_inference(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += y.data()[i];
    return acc;
  };

  layer.zero_grad();
  const Matrix y = layer.forward(x);
  Matrix dy(y.rows(), y.cols(), 1.0f);  // dLoss/dy = 1
  const Matrix dx = layer.backward(dy);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < layer.num_params(); ++i) {
    float* p = layer.param(i);
    const float orig = *p;
    *p = orig + eps;
    const double hi = loss();
    *p = orig - eps;
    const double lo = loss();
    *p = orig;
    const double numeric = (hi - lo) / (2 * eps);
    EXPECT_NEAR(layer.grad(i), numeric, 1e-2) << "param " << i;
  }

  // Input gradient: dLoss/dx[r][c] = sum_j W[c][j].
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      float expected = 0.0f;
      for (std::size_t j = 0; j < 2; ++j) expected += layer.weights().at(c, j);
      EXPECT_NEAR(dx.at(r, c), expected, 1e-5);
    }
  }
}

TEST(DenseLayer, GradAccumulatesAcrossBackwardCalls) {
  DenseLayer layer(2, 2);
  Rng rng(3);
  layer.init(rng);
  Matrix x(1, 2, 1.0f);
  Matrix dy(1, 2, 1.0f);
  layer.zero_grad();
  layer.forward(x);
  layer.backward(dy);
  const float once = layer.grad(0);
  layer.forward(x);
  layer.backward(dy);
  EXPECT_NEAR(layer.grad(0), 2 * once, 1e-6);
  layer.zero_grad();
  EXPECT_FLOAT_EQ(layer.grad(0), 0.0f);
}

TEST(DenseLayer, BackwardBeforeForwardThrows) {
  DenseLayer layer(2, 2);
  Matrix dy(1, 2, 1.0f);
  EXPECT_THROW(layer.backward(dy), InvalidArgument);
}

TEST(DenseLayer, ShapeValidation) {
  DenseLayer layer(3, 2);
  Matrix wrong(1, 4);
  EXPECT_THROW(layer.forward(wrong), InvalidArgument);
  EXPECT_THROW(DenseLayer(0, 2), InvalidArgument);
}

TEST(ReluLayer, ForwardClampsNegatives) {
  Matrix x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.5f;
  x.at(0, 3) = -0.1f;
  const Matrix y = ReluLayer::forward_inference(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 0.0f);
}

TEST(ReluLayer, BackwardMasksInactiveUnits) {
  ReluLayer relu;
  Matrix x(1, 3);
  x.at(0, 0) = -2.0f;
  x.at(0, 1) = 3.0f;
  x.at(0, 2) = 0.0f;
  relu.forward(x);
  Matrix dy(1, 3, 1.0f);
  const Matrix dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 0.0f);  // convention: gradient 0 at 0
}

}  // namespace
}  // namespace topil::nn
