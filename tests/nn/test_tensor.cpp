#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::nn {
namespace {

Matrix filled(std::size_t r, std::size_t c,
              std::initializer_list<float> values) {
  Matrix m(r, c);
  std::size_t i = 0;
  for (float v : values) m.data()[i++] = v;
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.row(0)[1], 7.0f);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 3), InvalidArgument);
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(3.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], 3.0f);
  }
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = filled(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatmulDimensionCheck) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), InvalidArgument);
}

TEST(Matrix, TransposedSelfMatmul) {
  // a^T * b where a is 3x2, b is 3x2 -> 2x2.
  const Matrix a = filled(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(3, 2, {1, 0, 0, 1, 1, 1});
  const Matrix c = a.matmul_transposed_self(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  // c[i][j] = sum_k a[k][i] * b[k][j].
  EXPECT_FLOAT_EQ(c.at(0, 0), 1 * 1 + 3 * 0 + 5 * 1);
  EXPECT_FLOAT_EQ(c.at(0, 1), 1 * 0 + 3 * 1 + 5 * 1);
  EXPECT_FLOAT_EQ(c.at(1, 0), 2 * 1 + 4 * 0 + 6 * 1);
  EXPECT_FLOAT_EQ(c.at(1, 1), 2 * 0 + 4 * 1 + 6 * 1);
}

TEST(Matrix, TransposedOtherMatmul) {
  // a * b^T where a is 2x3, b is 2x3 -> 2x2.
  const Matrix a = filled(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(2, 3, {1, 1, 1, 2, 0, 2});
  const Matrix c = a.matmul_transposed_other(b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 15.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 20.0f);
}

TEST(Matrix, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 5);
  Matrix b(4, 6);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  // Build a^T explicitly and compare a^T*b against matmul_transposed_self.
  Matrix at(5, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) at.at(c, r) = a.at(r, c);
  }
  const Matrix expected = at.matmul(b);
  const Matrix actual = a.matmul_transposed_self(b);
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i], 1e-5);
  }
}

}  // namespace
}  // namespace topil::nn
