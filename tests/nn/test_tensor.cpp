#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::nn {
namespace {

Matrix filled(std::size_t r, std::size_t c,
              std::initializer_list<float> values) {
  Matrix m(r, c);
  std::size_t i = 0;
  for (float v : values) m.data()[i++] = v;
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.row(0)[1], 7.0f);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 3), InvalidArgument);
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(3.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], 3.0f);
  }
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = filled(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatmulDimensionCheck) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), InvalidArgument);
}

TEST(Matrix, TransposedSelfMatmul) {
  // a^T * b where a is 3x2, b is 3x2 -> 2x2.
  const Matrix a = filled(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(3, 2, {1, 0, 0, 1, 1, 1});
  const Matrix c = a.matmul_transposed_self(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  // c[i][j] = sum_k a[k][i] * b[k][j].
  EXPECT_FLOAT_EQ(c.at(0, 0), 1 * 1 + 3 * 0 + 5 * 1);
  EXPECT_FLOAT_EQ(c.at(0, 1), 1 * 0 + 3 * 1 + 5 * 1);
  EXPECT_FLOAT_EQ(c.at(1, 0), 2 * 1 + 4 * 0 + 6 * 1);
  EXPECT_FLOAT_EQ(c.at(1, 1), 2 * 0 + 4 * 1 + 6 * 1);
}

TEST(Matrix, TransposedOtherMatmul) {
  // a * b^T where a is 2x3, b is 2x3 -> 2x2.
  const Matrix a = filled(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = filled(2, 3, {1, 1, 1, 2, 0, 2});
  const Matrix c = a.matmul_transposed_other(b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 15.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 20.0f);
}

// Naive reference kernel: the exact pre-blocking algorithm (ascending-k
// accumulation per output element). The blocked kernel must match it with
// bitwise float equality, not just approximately — this is what makes the
// parallel pipeline's outputs byte-identical to the serial baseline.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(r, k) * b.at(k, c);
      }
      out.at(r, c) = acc;
    }
  }
  return out;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return m;
}

TEST(Matrix, BlockedMatmulBitIdenticalOnPolicyMlpShapes) {
  // The 21 -> 64x4 -> 8 policy network at a few inference batch sizes.
  struct Shape {
    std::size_t m, k, n;
  };
  Rng rng(11);
  for (const Shape& s : {Shape{1, 21, 64}, Shape{16, 21, 64},
                         Shape{16, 64, 64}, Shape{16, 64, 8},
                         Shape{256, 64, 64}}) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix expected = naive_matmul(a, b);
    const Matrix actual = a.matmul(b);
    ASSERT_EQ(actual.rows(), expected.rows());
    ASSERT_EQ(actual.cols(), expected.cols());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual.data()[i], expected.data()[i])
          << s.m << "x" << s.k << " * " << s.k << "x" << s.n
          << " diverges at flat index " << i;
    }
  }
}

TEST(Matrix, BlockedMatmulBitIdenticalOnOddShapes) {
  // Sizes that are not multiples of the 32x32 blocking: remainder tiles on
  // both axes, plus degenerate single-row/column cases.
  struct Shape {
    std::size_t m, k, n;
  };
  Rng rng(29);
  for (const Shape& s : {Shape{33, 17, 9}, Shape{31, 33, 65},
                         Shape{1, 1, 1}, Shape{37, 64, 1},
                         Shape{1, 50, 33}}) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    const Matrix expected = naive_matmul(a, b);
    const Matrix actual = a.matmul(b);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual.data()[i], expected.data()[i])
          << s.m << "x" << s.k << " * " << s.k << "x" << s.n
          << " diverges at flat index " << i;
    }
  }
}

TEST(Matrix, MatmulIntoReusesBuffersAcrossShapes) {
  Rng rng(5);
  Matrix out;
  std::vector<float> scratch;
  // Shrinking then growing shapes through the same workspace: each call
  // must resize correctly and leave no stale values behind.
  struct Shape {
    std::size_t m, k, n;
  };
  for (const Shape& s : {Shape{16, 64, 64}, Shape{4, 21, 64},
                         Shape{33, 17, 9}, Shape{16, 64, 8}}) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.k, s.n, rng);
    a.matmul_into(b, out, scratch);
    const Matrix expected = naive_matmul(a, b);
    ASSERT_EQ(out.rows(), expected.rows());
    ASSERT_EQ(out.cols(), expected.cols());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(out.data()[i], expected.data()[i]);
    }
  }
}

TEST(Matrix, ResizeReusesAllocationAndChecksShape) {
  Matrix m(8, 8, 1.0f);
  const float* before = m.data();
  m.resize(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.data(), before) << "shrinking must not reallocate";
  m.resize(16, 16);
  EXPECT_EQ(m.size(), 256u);
}

TEST(Matrix, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 5);
  Matrix b(4, 6);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  // Build a^T explicitly and compare a^T*b against matmul_transposed_self.
  Matrix at(5, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) at.at(c, r) = a.at(r, c);
  }
  const Matrix expected = at.matmul(b);
  const Matrix actual = a.matmul_transposed_self(b);
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i], 1e-5);
  }
}

}  // namespace
}  // namespace topil::nn
