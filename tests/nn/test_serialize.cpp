#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace topil::nn {
namespace {

Topology topo() {
  Topology t;
  t.inputs = 21;
  t.hidden = {64, 64, 64, 64};
  t.outputs = 8;
  return t;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripPreservesPredictions) {
  Mlp model(topo());
  model.init(17);
  const std::string path = temp_path("model_roundtrip.bin");
  save_model(model, path);
  const Mlp loaded = load_model(path);

  EXPECT_EQ(loaded.topology().inputs, 21u);
  EXPECT_EQ(loaded.topology().hidden, std::vector<std::size_t>(4, 64));
  EXPECT_EQ(loaded.topology().outputs, 8u);

  Matrix x(2, 21, 0.25f);
  const Matrix a = model.predict(x);
  const Matrix b = loaded.predict(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  EXPECT_THROW(load_model(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncatedFile) {
  Mlp model(topo());
  model.init(1);
  const std::string path = temp_path("truncated.bin");
  save_model(model, path);
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_THROW(load_model(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/dir/model.bin"), InvalidArgument);
  Mlp model(topo());
  EXPECT_THROW(save_model(model, "/nonexistent/dir/model.bin"),
               InvalidArgument);
}

}  // namespace
}  // namespace topil::nn
