#include "nn/sgd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"

namespace topil::nn {
namespace {

Topology linear2() {
  Topology t;
  t.inputs = 2;
  t.outputs = 1;
  return t;
}

void make_regression(Matrix& x, Matrix& y, std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(64, 2);
  y = Matrix(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    y.at(r, 0) = static_cast<float>(1.5 * a - 0.7 * b + 0.2);
  }
}

TEST(Sgd, ConvergesOnLinearRegression) {
  Mlp model(linear2());
  model.init(3);
  SgdMomentum opt(model);
  Matrix x, y;
  make_regression(x, y, 1);
  double loss = 0.0;
  for (int i = 0; i < 400; ++i) {
    model.zero_grad();
    const Matrix pred = model.forward(x);
    loss = mse(pred, y);
    model.backward(mse_gradient(pred, y));
    opt.step(0.05);
  }
  EXPECT_LT(loss, 1e-4);
  EXPECT_EQ(opt.steps_taken(), 400u);
}

TEST(Sgd, MomentumAcceleratesOverPlainSgd) {
  Matrix x, y;
  make_regression(x, y, 2);
  auto run = [&](double momentum) {
    Mlp model(linear2());
    model.init(5);
    SgdMomentum::Config config;
    config.momentum = momentum;
    SgdMomentum opt(model, config);
    double loss = 0.0;
    for (int i = 0; i < 60; ++i) {
      model.zero_grad();
      const Matrix pred = model.forward(x);
      loss = mse(pred, y);
      model.backward(mse_gradient(pred, y));
      opt.step(0.02);
    }
    return loss;
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Mlp a(linear2());
  a.init(7);
  Mlp b(linear2());
  b.init(7);
  SgdMomentum::Config decay;
  decay.weight_decay = 0.1;
  SgdMomentum opt_a(a);
  SgdMomentum opt_b(b, decay);
  // Zero gradients: only the decay term acts.
  a.zero_grad();
  b.zero_grad();
  for (int i = 0; i < 50; ++i) {
    opt_a.step(0.1);
    opt_b.step(0.1);
  }
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (float w : a.save_weights()) norm_a += std::abs(w);
  for (float w : b.save_weights()) norm_b += std::abs(w);
  EXPECT_LT(norm_b, norm_a * 0.9);
}

TEST(Sgd, AdamBeatsSgdOnIllConditionedProblem) {
  // The rationale for the paper's optimizer choice: with features on very
  // different scales, Adam converges where fixed-rate SGD crawls.
  Rng rng(9);
  Matrix x(64, 2);
  Matrix y(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    const double a = rng.uniform(-0.01, 0.01);
    const double b = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    y.at(r, 0) = static_cast<float>(10 * a + b);
  }
  auto final_loss = [&](auto&& make_step) {
    Mlp model(linear2());
    model.init(4);
    auto opt = make_step(model);
    double loss = 0.0;
    for (int i = 0; i < 400; ++i) {
      model.zero_grad();
      const Matrix pred = model.forward(x);
      loss = mse(pred, y);
      model.backward(mse_gradient(pred, y));
      opt.step(0.02);
    }
    return loss;
  };
  const double adam = final_loss([](Mlp& m) { return Adam(m); });
  const double sgd = final_loss([](Mlp& m) { return SgdMomentum(m); });
  EXPECT_LT(adam, sgd);
}

TEST(Sgd, Validation) {
  Mlp model(linear2());
  SgdMomentum::Config bad;
  bad.momentum = 1.0;
  EXPECT_THROW(SgdMomentum(model, bad), InvalidArgument);
  SgdMomentum opt(model);
  EXPECT_THROW(opt.step(0.0), InvalidArgument);
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0u);
}

}  // namespace
}  // namespace topil::nn
