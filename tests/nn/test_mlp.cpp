#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace topil::nn {
namespace {

Topology paper_topology() {
  Topology t;
  t.inputs = 21;
  t.hidden = {64, 64, 64, 64};
  t.outputs = 8;
  return t;
}

TEST(Mlp, PaperTopologyParameterCount) {
  Mlp model(paper_topology());
  // 21*64+64 + 3*(64*64+64) + 64*8+8 = 14,536 parameters.
  EXPECT_EQ(model.num_params(),
            21u * 64 + 64 + 3 * (64 * 64 + 64) + 64 * 8 + 8);
  EXPECT_EQ(model.layers().size(), 5u);
}

TEST(Mlp, DeterministicInitForSameSeed) {
  Mlp a(paper_topology());
  Mlp b(paper_topology());
  a.init(11);
  b.init(11);
  EXPECT_EQ(a.save_weights(), b.save_weights());
  b.init(12);
  EXPECT_NE(a.save_weights(), b.save_weights());
}

TEST(Mlp, PredictMatchesForward) {
  Mlp model(paper_topology());
  model.init(5);
  Matrix x(3, 21);
  Rng rng(2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const Matrix a = model.forward(x);
  const Matrix b = model.predict(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Mlp, SaveLoadWeightsRoundTrip) {
  Mlp a(paper_topology());
  a.init(9);
  Mlp b(paper_topology());
  b.init(10);
  b.load_weights(a.save_weights());
  Matrix x(1, 21, 0.3f);
  const Matrix ya = a.predict(x);
  const Matrix yb = b.predict(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  EXPECT_THROW(b.load_weights(std::vector<float>(3)), InvalidArgument);
}

TEST(Mlp, GradientCheckThroughWholeNetwork) {
  Topology t;
  t.inputs = 4;
  t.hidden = {5, 5};
  t.outputs = 3;
  Mlp model(t);
  model.init(21);

  Matrix x(2, 4);
  Matrix target(2, 3);
  Rng rng(8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (std::size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }

  model.zero_grad();
  const Matrix pred = model.forward(x);
  model.backward(mse_gradient(pred, target));

  // Finite differences on a sample of parameters in every layer.
  const float eps = 1e-3f;
  for (auto& layer : model.layers()) {
    for (std::size_t i = 0; i < layer.num_params();
         i += std::max<std::size_t>(1, layer.num_params() / 7)) {
      float* p = layer.param(i);
      const float orig = *p;
      *p = orig + eps;
      const double hi = mse(model.predict(x), target);
      *p = orig - eps;
      const double lo = mse(model.predict(x), target);
      *p = orig;
      EXPECT_NEAR(layer.grad(i), (hi - lo) / (2 * eps), 2e-3);
    }
  }
}

TEST(Mlp, NoHiddenLayersIsLinearModel) {
  Topology t;
  t.inputs = 2;
  t.outputs = 1;
  Mlp model(t);
  EXPECT_EQ(model.layers().size(), 1u);
  model.init(1);
  // Linear: f(2x) - f(0) == 2 * (f(x) - f(0)).
  Matrix x0(1, 2, 0.0f);
  Matrix x1(1, 2, 1.0f);
  Matrix x2(1, 2, 2.0f);
  const double f0 = model.predict(x0).at(0, 0);
  const double f1 = model.predict(x1).at(0, 0);
  const double f2 = model.predict(x2).at(0, 0);
  EXPECT_NEAR(f2 - f0, 2 * (f1 - f0), 1e-5);
}

TEST(Mlp, ValidatesTopology) {
  Topology bad;
  bad.inputs = 0;
  bad.outputs = 1;
  EXPECT_THROW(Mlp{bad}, InvalidArgument);
  bad.inputs = 1;
  bad.outputs = 0;
  EXPECT_THROW(Mlp{bad}, InvalidArgument);
  bad.outputs = 1;
  bad.hidden = {0};
  EXPECT_THROW(Mlp{bad}, InvalidArgument);
}

TEST(MseLoss, ValueAndGradient) {
  Matrix pred(1, 2);
  pred.at(0, 0) = 1.0f;
  pred.at(0, 1) = 3.0f;
  Matrix target(1, 2);
  target.at(0, 0) = 0.0f;
  target.at(0, 1) = 1.0f;
  EXPECT_NEAR(mse(pred, target), (1.0 + 4.0) / 2.0, 1e-9);
  const Matrix g = mse_gradient(pred, target);
  EXPECT_FLOAT_EQ(g.at(0, 0), 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 2.0f * 2.0f / 2.0f);
  Matrix wrong(2, 1);
  EXPECT_THROW(mse(pred, wrong), InvalidArgument);
}

}  // namespace
}  // namespace topil::nn
