#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::nn {
namespace {

// Smooth nonlinear target a 1-hidden-layer net can approximate.
void make_dataset(std::size_t n, Matrix& x, Matrix& y, std::uint64_t seed) {
  x = Matrix(n, 2);
  y = Matrix(n, 1);
  Rng rng(seed);
  for (std::size_t r = 0; r < n; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    y.at(r, 0) = static_cast<float>(std::sin(2 * a) + 0.5 * b);
  }
}

Topology small() {
  Topology t;
  t.inputs = 2;
  t.hidden = {16, 16};
  t.outputs = 1;
  return t;
}

TEST(Trainer, LearnsNonlinearFunction) {
  Matrix x, y;
  make_dataset(512, x, y, 1);
  Mlp model(small());
  TrainerConfig config;
  config.max_epochs = 60;
  config.seed = 3;
  Trainer trainer(config);
  const TrainResult result = trainer.fit(model, x, y);
  EXPECT_LT(result.best_validation_loss, 0.01);
  EXPECT_GE(result.epochs_run, 1u);
  EXPECT_EQ(result.train_loss_history.size(), result.epochs_run);
  EXPECT_EQ(result.validation_loss_history.size(), result.epochs_run);
}

TEST(Trainer, LossDecreasesOverTraining) {
  Matrix x, y;
  make_dataset(256, x, y, 2);
  Mlp model(small());
  TrainerConfig config;
  config.max_epochs = 30;
  config.patience = 30;
  Trainer trainer(config);
  const TrainResult result = trainer.fit(model, x, y);
  EXPECT_LT(result.train_loss_history.back(),
            result.train_loss_history.front() * 0.5);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  // A target of pure noise: validation cannot improve for long, so early
  // stopping must end training well before max_epochs.
  Matrix x(128, 2);
  Matrix y(128, 1);
  Rng rng(4);
  for (std::size_t r = 0; r < 128; ++r) {
    x.at(r, 0) = static_cast<float>(rng.uniform(-1, 1));
    x.at(r, 1) = static_cast<float>(rng.uniform(-1, 1));
    y.at(r, 0) = static_cast<float>(rng.gaussian(0, 1));
  }
  Mlp model(small());
  TrainerConfig config;
  config.max_epochs = 500;
  config.patience = 5;
  Trainer trainer(config);
  const TrainResult result = trainer.fit(model, x, y);
  EXPECT_LT(result.epochs_run, 200u);
}

TEST(Trainer, RestoresBestWeightsNotLastWeights) {
  Matrix x, y;
  make_dataset(256, x, y, 5);
  Mlp model(small());
  TrainerConfig config;
  config.max_epochs = 40;
  config.patience = 40;
  Trainer trainer(config);
  const TrainResult result = trainer.fit(model, x, y);
  // The model must evaluate at (or very near) the best recorded epoch loss
  // on a re-split of the same data distribution.
  Matrix vx, vy;
  make_dataset(256, vx, vy, 6);
  const double loss = Trainer::evaluate(model, vx, vy);
  EXPECT_LT(loss, result.best_validation_loss * 3 + 0.02);
  EXPECT_LE(result.best_epoch, result.epochs_run);
}

TEST(Trainer, DeterministicForSameSeed) {
  Matrix x, y;
  make_dataset(128, x, y, 7);
  TrainerConfig config;
  config.max_epochs = 10;
  config.seed = 9;
  Mlp a(small());
  Mlp b(small());
  Trainer(config).fit(a, x, y);
  Trainer(config).fit(b, x, y);
  EXPECT_EQ(a.save_weights(), b.save_weights());
}

TEST(Trainer, SeedChangesResult) {
  Matrix x, y;
  make_dataset(128, x, y, 7);
  TrainerConfig c1;
  c1.max_epochs = 5;
  c1.seed = 1;
  TrainerConfig c2 = c1;
  c2.seed = 2;
  Mlp a(small());
  Mlp b(small());
  Trainer(c1).fit(a, x, y);
  Trainer(c2).fit(b, x, y);
  EXPECT_NE(a.save_weights(), b.save_weights());
}

TEST(Trainer, ValidatesInputs) {
  Mlp model(small());
  Matrix x(10, 3);  // wrong width
  Matrix y(10, 1);
  EXPECT_THROW(Trainer().fit(model, x, y), InvalidArgument);
  Matrix x2(10, 2);
  Matrix y2(9, 1);  // row mismatch
  EXPECT_THROW(Trainer().fit(model, x2, y2), InvalidArgument);
  TrainerConfig bad;
  bad.validation_fraction = 1.5;
  EXPECT_THROW(Trainer{bad}, InvalidArgument);
}

}  // namespace
}  // namespace topil::nn
