#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace topil::nn {
namespace {

Topology tiny() {
  Topology t;
  t.inputs = 2;
  t.hidden = {8};
  t.outputs = 1;
  return t;
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step has magnitude ~lr for
  // any nonzero gradient.
  Topology t;
  t.inputs = 1;
  t.outputs = 1;
  Mlp model(t);
  model.init(1);
  const std::vector<float> before = model.save_weights();

  Matrix x(1, 1, 1.0f);
  Matrix target(1, 1, 100.0f);  // large error -> all gradients nonzero
  model.zero_grad();
  const Matrix pred = model.forward(x);
  model.backward(mse_gradient(pred, target));

  Adam opt(model);
  opt.step(0.01);
  const std::vector<float> after = model.save_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(std::abs(after[i] - before[i]), 0.01, 1e-4) << i;
  }
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(Adam, ConvergesOnLinearRegression) {
  // y = 2*x0 - 3*x1 + 1; a linear model must fit it to ~zero loss.
  Topology t;
  t.inputs = 2;
  t.outputs = 1;
  Mlp model(t);
  model.init(4);
  Adam opt(model);

  Rng rng(5);
  Matrix x(64, 2);
  Matrix y(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    y.at(r, 0) = static_cast<float>(2 * a - 3 * b + 1);
  }
  double loss = 0.0;
  for (int i = 0; i < 500; ++i) {
    model.zero_grad();
    const Matrix pred = model.forward(x);
    loss = mse(pred, y);
    model.backward(mse_gradient(pred, y));
    opt.step(0.05);
  }
  EXPECT_LT(loss, 1e-4);
}

TEST(Adam, BeatsPlainScaleOnIllConditionedProblem) {
  // Feature scales differ by 100x; Adam's per-parameter normalization
  // must still converge in a modest step budget.
  Topology t;
  t.inputs = 2;
  t.outputs = 1;
  Mlp model(t);
  model.init(4);
  Adam opt(model);
  Rng rng(6);
  Matrix x(64, 2);
  Matrix y(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    const double a = rng.uniform(-0.01, 0.01);
    const double b = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    y.at(r, 0) = static_cast<float>(10 * a + b);
  }
  double loss = 0.0;
  for (int i = 0; i < 1500; ++i) {
    model.zero_grad();
    const Matrix pred = model.forward(x);
    loss = mse(pred, y);
    model.backward(mse_gradient(pred, y));
    opt.step(0.03);
  }
  EXPECT_LT(loss, 1e-3);
}

TEST(Adam, ResetClearsMoments) {
  Mlp model(tiny());
  model.init(2);
  Adam opt(model);
  Matrix x(1, 2, 1.0f);
  Matrix y(1, 1, 5.0f);
  model.zero_grad();
  model.backward(mse_gradient(model.forward(x), y));
  opt.step(0.01);
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0u);
}

TEST(Adam, ValidatesConfigAndLearningRate) {
  Mlp model(tiny());
  Adam::Config bad;
  bad.beta1 = 1.0;
  EXPECT_THROW(Adam(model, bad), InvalidArgument);
  Adam opt(model);
  EXPECT_THROW(opt.step(0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil::nn
