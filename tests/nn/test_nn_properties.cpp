// Parameterized property sweeps over the NN stack: determinism,
// save/load equivalence, and gradient correctness across topologies.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace topil::nn {
namespace {

struct TopoCase {
  std::size_t inputs;
  std::vector<std::size_t> hidden;
  std::size_t outputs;
};

class MlpTopologySweep : public ::testing::TestWithParam<int> {
 protected:
  static TopoCase make_case(int index) {
    switch (index) {
      case 0:
        return {3, {}, 2};           // linear
      case 1:
        return {5, {8}, 1};          // shallow
      case 2:
        return {21, {64, 64}, 8};    // half the paper network
      case 3:
        return {4, {6, 5, 4}, 3};    // ragged widths
      default:
        return {2, {16, 16, 16, 16, 16, 16}, 2};  // deep
    }
  }

  Topology topo() const {
    const TopoCase c = make_case(GetParam());
    Topology t;
    t.inputs = c.inputs;
    t.hidden = c.hidden;
    t.outputs = c.outputs;
    return t;
  }

  Matrix random_batch(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) const {
    Matrix m(rows, cols);
    Rng rng(seed);
    for (std::size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    return m;
  }
};

TEST_P(MlpTopologySweep, InitIsDeterministicAndFinite) {
  Mlp a(topo());
  Mlp b(topo());
  a.init(77);
  b.init(77);
  const auto wa = a.save_weights();
  const auto wb = b.save_weights();
  EXPECT_EQ(wa, wb);
  for (float w : wa) {
    EXPECT_TRUE(std::isfinite(w));
  }
}

TEST_P(MlpTopologySweep, SaveLoadPreservesOutputs) {
  Mlp a(topo());
  a.init(5);
  Mlp b(topo());
  b.init(6);
  b.load_weights(a.save_weights());
  const Matrix x = random_batch(3, topo().inputs, 9);
  const Matrix ya = a.predict(x);
  const Matrix yb = b.predict(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST_P(MlpTopologySweep, GradientsMatchFiniteDifferences) {
  Mlp model(topo());
  model.init(13);
  const Matrix x = random_batch(2, topo().inputs, 3);
  const Matrix target = random_batch(2, topo().outputs, 4);

  model.zero_grad();
  const Matrix pred = model.forward(x);
  model.backward(mse_gradient(pred, target));

  const float eps = 1e-3f;
  for (auto& layer : model.layers()) {
    const std::size_t stride =
        std::max<std::size_t>(1, layer.num_params() / 5);
    for (std::size_t i = 0; i < layer.num_params(); i += stride) {
      float* p = layer.param(i);
      const float orig = *p;
      *p = orig + eps;
      const double hi = mse(model.predict(x), target);
      *p = orig - eps;
      const double lo = mse(model.predict(x), target);
      *p = orig;
      EXPECT_NEAR(layer.grad(i), (hi - lo) / (2 * eps), 5e-3);
    }
  }
}

TEST_P(MlpTopologySweep, BatchInferenceMatchesRowByRow) {
  Mlp model(topo());
  model.init(21);
  const Matrix batch = random_batch(5, topo().inputs, 8);
  const Matrix full = model.predict(batch);
  for (std::size_t r = 0; r < 5; ++r) {
    Matrix row(1, topo().inputs);
    for (std::size_t c = 0; c < topo().inputs; ++c) {
      row.at(0, c) = batch.at(r, c);
    }
    const Matrix y = model.predict(row);
    for (std::size_t c = 0; c < topo().outputs; ++c) {
      EXPECT_FLOAT_EQ(y.at(0, c), full.at(r, c)) << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, MlpTopologySweep,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace topil::nn
