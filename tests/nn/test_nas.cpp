#include "nn/nas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::nn {
namespace {

void make_dataset(std::size_t n, Matrix& x, Matrix& y) {
  x = Matrix(n, 3);
  y = Matrix(n, 2);
  Rng rng(11);
  for (std::size_t r = 0; r < n; ++r) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    const double c = rng.uniform(-1, 1);
    x.at(r, 0) = static_cast<float>(a);
    x.at(r, 1) = static_cast<float>(b);
    x.at(r, 2) = static_cast<float>(c);
    y.at(r, 0) = static_cast<float>(std::tanh(a * b));
    y.at(r, 1) = static_cast<float>(a - c);
  }
}

TEST(GridSearchNas, ExploresFullGrid) {
  Matrix x, y;
  make_dataset(128, x, y);
  NasConfig config;
  config.depths = {1, 2};
  config.widths = {4, 8};
  config.trainer.max_epochs = 5;
  GridSearchNas nas(config);
  const auto results = nas.run(3, 2, x, y);
  ASSERT_EQ(results.size(), 4u);
  // Each (depth,width) combination appears once.
  for (std::size_t d : {1u, 2u}) {
    for (std::size_t w : {4u, 8u}) {
      const auto it = std::find_if(
          results.begin(), results.end(), [&](const NasResultEntry& e) {
            return e.depth == d && e.width == w;
          });
      EXPECT_NE(it, results.end());
      EXPECT_GT(it->num_params, 0u);
      EXPECT_GE(it->epochs_run, 1u);
    }
  }
}

TEST(GridSearchNas, ParameterCountsGrowWithSize) {
  Matrix x, y;
  make_dataset(64, x, y);
  NasConfig config;
  config.depths = {1, 3};
  config.widths = {8, 32};
  config.trainer.max_epochs = 2;
  const auto results = GridSearchNas(config).run(3, 2, x, y);
  auto params = [&](std::size_t d, std::size_t w) {
    for (const auto& e : results) {
      if (e.depth == d && e.width == w) return e.num_params;
    }
    return std::size_t{0};
  };
  EXPECT_LT(params(1, 8), params(3, 8));
  EXPECT_LT(params(1, 8), params(1, 32));
  EXPECT_LT(params(3, 8), params(3, 32));
}

TEST(GridSearchNas, BestPicksMinimumLoss) {
  std::vector<NasResultEntry> entries(3);
  entries[0].validation_loss = 0.5;
  entries[1].validation_loss = 0.1;
  entries[2].validation_loss = 0.3;
  EXPECT_EQ(&GridSearchNas::best(entries), &entries[1]);
  EXPECT_THROW(GridSearchNas::best({}), InvalidArgument);
}

TEST(GridSearchNas, LargerNetworksFitComplexTargetBetter) {
  Matrix x, y;
  make_dataset(512, x, y);
  NasConfig config;
  config.depths = {1};
  config.widths = {2, 32};
  config.trainer.max_epochs = 40;
  config.trainer.patience = 40;
  const auto results = GridSearchNas(config).run(3, 2, x, y);
  double loss2 = 0.0;
  double loss32 = 0.0;
  for (const auto& e : results) {
    if (e.width == 2) loss2 = e.validation_loss;
    if (e.width == 32) loss32 = e.validation_loss;
  }
  EXPECT_LT(loss32, loss2);
}

TEST(GridSearchNas, ValidatesConfig) {
  NasConfig bad;
  bad.depths = {};
  EXPECT_THROW(GridSearchNas{bad}, InvalidArgument);
}

}  // namespace
}  // namespace topil::nn
