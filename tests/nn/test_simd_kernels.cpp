#include "nn/simd_kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/mlp.hpp"

namespace topil::nn {
namespace {

std::uint32_t bits_of(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Scalar reference for one dense layer, written exactly the way the
// production reference computes it: matmul (acc = 0, ascending k), then a
// SEPARATE bias pass, then an elementwise `if (v < 0) v = 0` ReLU.
void dense_forward_reference(const Matrix& x, const Matrix& w,
                             const std::vector<float>& bias, Matrix& out,
                             std::vector<float>& bt, bool relu) {
  x.matmul_into(w, out, bt);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* o = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) o[c] += bias[c];
  }
  if (relu) {
    float* data = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (data[i] < 0.0f) data[i] = 0.0f;
    }
  }
}

void expect_bit_identical(const Matrix& got, const Matrix& want,
                          const std::string& label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
        << label << " element " << i;
  }
}

TEST(DenseForwardSimd, BitIdenticalToReferenceOverRaggedShapes) {
  Rng rng(20260809);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 65));
    const std::size_t in = static_cast<std::size_t>(rng.uniform_int(1, 70));
    const std::size_t out_cols =
        static_cast<std::size_t>(rng.uniform_int(1, 70));
    const bool relu = rng.uniform_int(0, 1) == 1;

    Matrix x(rows, in);
    Matrix w(in, out_cols);
    std::vector<float> bias(out_cols);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.5));
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = static_cast<float>(rng.gaussian(0.0, 0.8));
    }
    for (float& b : bias) b = static_cast<float>(rng.gaussian(0.0, 0.5));

    Matrix want;
    std::vector<float> bt;
    dense_forward_reference(x, w, bias, want, bt, relu);

    Matrix got(rows, out_cols);
    dense_forward_simd(x.data(), rows, in, w.data(), bias.data(), out_cols,
                       got.data(), relu);
    expect_bit_identical(got, want,
                         "shape " + std::to_string(rows) + "x" +
                             std::to_string(in) + "x" +
                             std::to_string(out_cols));
  }
}

TEST(DenseForwardSimd, AdversarialValuesMatchBitwise) {
  // Subnormals, signed zeros, huge magnitudes, and NaN all go through the
  // same operation sequence, so even non-finite results must match
  // bit-for-bit (the ReLU keeps -0.0 and NaN like the reference branch).
  const std::size_t rows = 5;
  const std::size_t in = 7;
  const std::size_t out_cols = 9;
  const float specials[] = {0.0f,    -0.0f,   1e-40f, -1e-40f, 65504.0f,
                            -65504.0f, 3e38f, 1.0f,   -1.0f};
  Matrix x(rows, in);
  Matrix w(in, out_cols);
  std::vector<float> bias(out_cols);
  Rng rng(7);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = specials[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(specials) - 1))];
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = specials[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(specials) - 1))];
  }
  bias[0] = -0.0f;
  bias[1] = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t c = 2; c < out_cols; ++c) {
    bias[c] = specials[c % std::size(specials)];
  }

  for (const bool relu : {false, true}) {
    Matrix want;
    std::vector<float> bt;
    dense_forward_reference(x, w, bias, want, bt, relu);
    Matrix got(rows, out_cols);
    dense_forward_simd(x.data(), rows, in, w.data(), bias.data(), out_cols,
                       got.data(), relu);
    expect_bit_identical(got, want, relu ? "relu" : "linear");
  }
}

TEST(DenseForwardSimd, RejectsEmptyShapes) {
  float dummy = 0.0f;
  EXPECT_THROW(
      dense_forward_simd(&dummy, 0, 1, &dummy, &dummy, 1, &dummy, false),
      InvalidArgument);
  EXPECT_THROW(
      dense_forward_simd(&dummy, 1, 0, &dummy, &dummy, 1, &dummy, false),
      InvalidArgument);
  EXPECT_THROW(
      dense_forward_simd(&dummy, 1, 1, &dummy, &dummy, 0, &dummy, false),
      InvalidArgument);
}

TEST(MlpSimdKernel, PredictIntoBitIdenticalAcrossKernels) {
  Rng shapes(99);
  for (int trial = 0; trial < 12; ++trial) {
    Topology topology;
    topology.inputs = static_cast<std::size_t>(shapes.uniform_int(1, 33));
    const int depth = shapes.uniform_int(0, 3);
    for (int d = 0; d < depth; ++d) {
      topology.hidden.push_back(
          static_cast<std::size_t>(shapes.uniform_int(1, 48)));
    }
    topology.outputs = static_cast<std::size_t>(shapes.uniform_int(1, 17));

    Mlp model(topology);
    model.init(1234 + trial);

    const std::size_t rows =
        static_cast<std::size_t>(shapes.uniform_int(1, 40));
    Matrix input(rows, topology.inputs);
    Rng values(555 + trial);
    for (std::size_t i = 0; i < input.size(); ++i) {
      input.data()[i] = static_cast<float>(values.gaussian(0.0, 1.0));
    }

    Matrix scalar_out;
    Matrix simd_out;
    InferenceWorkspace scalar_ws;
    InferenceWorkspace simd_ws;
    model.predict_into(input, scalar_out, scalar_ws,
                       InferenceKernel::Scalar);
    model.predict_into(input, simd_out, simd_ws, InferenceKernel::Simd);
    expect_bit_identical(simd_out, scalar_out,
                         "topology trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace topil::nn
