#include "sim/trace_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

class TraceLogTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  SystemSim sim_{platform_, CoolingConfig::fan(), SimConfig{}};
  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.02, false);
};

TEST_F(TraceLogTest, SamplesAtConfiguredPeriod) {
  TraceLog log(0.5);
  sim_.spawn(app_, 1e8, 3);
  for (int i = 0; i < 200; ++i) {  // 2 s of simulation
    log.sample(sim_);
    sim_.step();
  }
  // Samples at t = 0, 0.5, 1.0, 1.5 (plus maybe 2.0 depending on order).
  EXPECT_GE(log.size(), 4u);
  EXPECT_LE(log.size(), 5u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_NEAR(log.samples()[i].time_s - log.samples()[i - 1].time_s, 0.5,
                0.02);
  }
}

TEST_F(TraceLogTest, SampleContentsReflectSystemState) {
  TraceLog log(0.1);
  sim_.request_vf_level(kBigCluster, 5);
  const Pid pid = sim_.spawn(app_, 1e8, 6);
  sim_.run_for(1.0);
  log.force_sample(sim_);
  const TraceSample& s = log.samples().back();
  EXPECT_NEAR(s.time_s, 1.0, 1e-9);
  EXPECT_EQ(s.vf_levels.size(), 2u);
  EXPECT_EQ(s.vf_levels[kBigCluster], 5u);
  EXPECT_EQ(s.core_utilization.size(), 8u);
  EXPECT_GT(s.core_utilization[6], 0.9);
  EXPECT_GT(s.total_power_w, 0.0);
  ASSERT_EQ(s.apps.size(), 1u);
  EXPECT_EQ(s.apps[0].pid, pid);
  EXPECT_EQ(s.apps[0].app_name, "a");
  EXPECT_EQ(s.apps[0].core, 6u);
  EXPECT_GT(s.apps[0].measured_ips, 0.0);
}

TEST_F(TraceLogTest, ClusterResidency) {
  TraceLog log(0.05);
  const Pid pid = sim_.spawn(app_, 1e8, 0);  // LITTLE
  for (int i = 0; i < 100; ++i) {
    log.sample(sim_);
    sim_.step();
  }
  sim_.migrate(pid, 6);  // big
  for (int i = 0; i < 100; ++i) {
    log.sample(sim_);
    sim_.step();
  }
  const double big_share = log.cluster_residency(pid, kBigCluster, platform_);
  EXPECT_NEAR(big_share, 0.5, 0.1);
  EXPECT_NEAR(log.cluster_residency(pid, kLittleCluster, platform_),
              1.0 - big_share, 1e-9);
  EXPECT_THROW(log.cluster_residency(999, kBigCluster, platform_),
               InvalidArgument);
}

TEST_F(TraceLogTest, CsvExportWritesBothFiles) {
  TraceLog log(0.1);
  sim_.spawn(app_, 1e8, 2);
  for (int i = 0; i < 50; ++i) {
    log.sample(sim_);
    sim_.step();
  }
  const std::string prefix = testing::TempDir() + "/tracelog_test";
  log.write_csv(prefix);
  std::ifstream sys(prefix + "_system.csv");
  std::ifstream apps(prefix + "_apps.csv");
  EXPECT_TRUE(sys.good());
  EXPECT_TRUE(apps.good());
  std::string header;
  std::getline(sys, header);
  EXPECT_NE(header.find("sensor_temp_c"), std::string::npos);
  EXPECT_NE(header.find("vf_level_cluster1"), std::string::npos);
  std::remove((prefix + "_system.csv").c_str());
  std::remove((prefix + "_apps.csv").c_str());
}

TEST_F(TraceLogTest, ClearAndValidation) {
  TraceLog log(0.1);
  EXPECT_THROW(log.write_csv("x"), InvalidArgument);  // empty
  log.force_sample(sim_);
  EXPECT_EQ(log.size(), 1u);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_THROW(TraceLog(0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil
