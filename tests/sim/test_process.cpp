#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil {
namespace {

AppSpec tiny_app(double instructions = 1e9) {
  return make_single_phase_app("tiny", instructions, {2.0, 0.0, 0.9},
                               {1.0, 0.0, 1.0}, 0.02, false);
}

TEST(RateTracker, ComputesWindowedRate) {
  RateTracker t(0.2);
  t.record(0.0, 0.0);
  EXPECT_DOUBLE_EQ(t.rate(), 0.0);  // single sample: no rate yet
  t.record(0.1, 100.0);
  EXPECT_NEAR(t.rate(), 1000.0, 1e-9);
  t.record(0.2, 300.0);
  EXPECT_NEAR(t.rate(), 1500.0, 1e-9);  // (300-0)/0.2
}

TEST(RateTracker, ForgetsSamplesBeyondHorizon) {
  RateTracker t(0.1);
  t.record(0.0, 0.0);
  for (int i = 1; i <= 50; ++i) t.record(i * 0.01, i * 10.0);
  // Rate over roughly the last 100 ms only: 10 per 10 ms = 1000/s.
  EXPECT_NEAR(t.rate(), 1000.0, 50.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.rate(), 0.0);
}

TEST(RateTracker, RejectsNonMonotonicTime) {
  RateTracker t(0.1);
  t.record(1.0, 5.0);
  EXPECT_THROW(t.record(0.9, 6.0), InvalidArgument);
}

TEST(Process, ExecutesAndRetiresInstructions) {
  const AppSpec app = tiny_app(1e9);
  Process p(1, app, 1e8, 0, 0.0);
  // big cluster at 1 GHz, cpi 1 -> 1e9 IPS; 0.5 s -> 5e8 instructions.
  p.execute(kBigCluster, 1.0, 0.5, 0.5);
  EXPECT_NEAR(p.instructions_retired(), 5e8, 1e3);
  EXPECT_NEAR(p.l2d_accesses(), 5e8 * 0.02, 1e3);
  EXPECT_FALSE(p.finished());
  p.execute(kBigCluster, 1.0, 0.6, 1.1);
  EXPECT_TRUE(p.finished());
  EXPECT_NEAR(p.finish_time(), 1.0, 1e-6);
  EXPECT_NEAR(p.instructions_retired(), 1e9, 1e3);
}

TEST(Process, LifetimeIpsAccountsWallClock) {
  const AppSpec app = tiny_app(1e9);
  Process p(1, app, 1e8, 0, 1.0);  // arrives at t=1
  p.execute(kBigCluster, 1.0, 0.25, 2.0);  // got 0.25s CPU over 1s wall
  EXPECT_NEAR(p.lifetime_ips(2.0), 0.25e9, 1e3);
}

TEST(Process, PhaseTransitionsChangeCharacteristics) {
  AppSpec app;
  app.name = "phases";
  PhaseSpec fast;
  fast.name = "fast";
  fast.instructions = 1e9;
  fast.perf = {{1.0, 0.0, 0.9}, {1.0, 0.0, 1.0}};
  fast.l2d_per_inst = 0.0;
  PhaseSpec slow = fast;
  slow.name = "slow";
  slow.perf = {{4.0, 0.0, 0.9}, {4.0, 0.0, 1.0}};
  app.phases = {fast, slow};

  Process p(1, app, 1e8, 0, 0.0);
  EXPECT_EQ(p.current_phase_index(), 0u);
  p.execute(kBigCluster, 1.0, 1.0, 1.0);  // finishes the fast phase exactly
  EXPECT_EQ(p.current_phase_index(), 1u);
  EXPECT_FALSE(p.finished());
  // The slow phase runs at a quarter of the speed.
  const double before = p.instructions_retired();
  p.execute(kBigCluster, 1.0, 1.0, 2.0);
  EXPECT_NEAR(p.instructions_retired() - before, 0.25e9, 1e3);
}

TEST(Process, PhaseBoundaryWithinOneTickIsExact) {
  AppSpec app;
  app.name = "boundary";
  PhaseSpec a;
  a.instructions = 0.5e9;
  a.perf = {{1.0, 0.0, 1.0}, {1.0, 0.0, 1.0}};  // 1 GIPS at 1 GHz
  PhaseSpec b = a;
  b.perf = {{2.0, 0.0, 1.0}, {2.0, 0.0, 1.0}};  // 0.5 GIPS at 1 GHz
  app.phases = {a, b};
  Process p(1, app, 1e8, 0, 0.0);
  // One 1 s slice spans both phases: 0.5 s in phase a (0.5e9 insts),
  // then 0.5 s in phase b (0.25e9 insts).
  p.execute(kBigCluster, 1.0, 1.0, 1.0);
  EXPECT_NEAR(p.instructions_retired(), 0.75e9, 1e3);
  EXPECT_FALSE(p.finished());
}

TEST(Process, MigrationPenaltySlowsExecution) {
  const AppSpec app = tiny_app(1e12);
  Process normal(1, app, 1e8, 0, 0.0);
  Process penalized(2, app, 1e8, 0, 0.0);
  penalized.apply_migration_penalty(1.0, 0.4);
  normal.execute(kBigCluster, 1.0, 0.5, 0.5);
  penalized.execute(kBigCluster, 1.0, 0.5, 0.5);
  EXPECT_NEAR(penalized.instructions_retired(),
              normal.instructions_retired() * 0.6, 1e4);
  // After the window the penalty no longer applies.
  const double before = penalized.instructions_retired();
  penalized.execute(kBigCluster, 1.0, 0.5, 2.0);
  EXPECT_NEAR(penalized.instructions_retired() - before, 0.5e9, 1e4);
}

TEST(Process, MeasuredIpsTracksRecentWindow) {
  const AppSpec app = tiny_app(1e12);
  Process p(1, app, 1e8, 0, 0.0);
  for (int i = 1; i <= 100; ++i) {
    p.execute(kBigCluster, 1.0, 0.01, i * 0.01);
  }
  EXPECT_NEAR(p.measured_ips(), 1e9, 1e7);
  EXPECT_NEAR(p.measured_l2d_rate(), 2e7, 1e6);
  // Idle ticks decay the measured rate toward zero.
  for (int i = 1; i <= 100; ++i) {
    p.idle_tick(1.0 + i * 0.01);
  }
  EXPECT_LT(p.measured_ips(), 1e8);
}

TEST(Process, FullStallMigrationPenaltyIsLegal) {
  // penalty == 1.0 models a migration that stalls the process completely
  // for the penalty window (cold caches on the worst-case phase). The old
  // strict `< 1.0` check rejected it.
  const AppSpec app = tiny_app(1e12);
  Process p(1, app, 1e8, 0, 0.0);
  p.apply_migration_penalty(0.5, 1.0);
  p.execute(kBigCluster, 1.0, 0.25, 0.25);  // entirely inside the window
  EXPECT_DOUBLE_EQ(p.instructions_retired(), 0.0);
  EXPECT_DOUBLE_EQ(p.l2d_accesses(), 0.0);
  EXPECT_FALSE(p.finished());
  // Past the window the process resumes at full speed.
  p.execute(kBigCluster, 1.0, 0.25, 0.75);
  EXPECT_NEAR(p.instructions_retired(), 0.25e9, 1e3);
  EXPECT_THROW(p.apply_migration_penalty(1.0, 1.5), InvalidArgument);
  EXPECT_THROW(p.apply_migration_penalty(1.0, -0.1), InvalidArgument);
}

TEST(Process, ZeroIpsPhaseIdlesInsteadOfCorruptingState) {
  // cpi/f overflows to inf -> ips == 0: an unrunnable phase. The execute
  // loop used to divide by it, which (with the phase-completion epsilon)
  // could mark the process finished with a NaN finish time.
  const AppSpec app = make_single_phase_app(
      "stuck", 1e-7, {1.7e308, 0.0, 0.9}, {1.7e308, 0.0, 1.0}, 0.0, false);
  Process p(1, app, 1e8, 0, 0.0);
  p.execute(kBigCluster, 0.5, 0.01, 0.01);
  EXPECT_FALSE(p.finished());
  EXPECT_DOUBLE_EQ(p.instructions_retired(), 0.0);
  EXPECT_TRUE(std::isfinite(p.instructions_retired()));
  EXPECT_TRUE(std::isfinite(p.l2d_accesses()));
  // Still schedulable afterwards: time advances, trackers stay sane.
  p.execute(kBigCluster, 0.5, 0.01, 0.02);
  EXPECT_EQ(p.measured_ips(), 0.0);
}

TEST(Process, QosGracePeriodEdgeIsInclusive) {
  const AppSpec app = tiny_app(1e12);
  Process p(1, app, 1e9, 0, /*arrival=*/1.0);
  // now - arrival == grace exactly: still inside the grace period.
  p.account_qos(/*now=*/3.0, 0.01, /*grace=*/2.0, 0.9);
  EXPECT_DOUBLE_EQ(p.qos_observed_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(p.qos_below_time_s(), 0.0);
  // One tick later the accounting starts.
  p.account_qos(3.01, 0.01, 2.0, 0.9);
  EXPECT_DOUBLE_EQ(p.qos_observed_time_s(), 0.01);
}

TEST(Process, QosBelowFractionWithZeroObservedTime) {
  const AppSpec app = tiny_app(1e12);
  Process p(1, app, 1e9, 0, 0.0);
  // Nothing observed yet (still in grace): the fraction must be 0, not
  // 0/0.
  EXPECT_DOUBLE_EQ(p.qos_below_fraction(1.0), 0.0);
}

TEST(Process, ValidatesConstruction) {
  const AppSpec app = tiny_app();
  EXPECT_THROW(Process(1, app, 0.0, 0, 0.0), InvalidArgument);
  AppSpec empty;
  empty.name = "empty";
  EXPECT_THROW(Process(1, empty, 1e8, 0, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil
