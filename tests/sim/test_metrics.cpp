#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  Metrics metrics_{platform_};
};

TEST_F(MetricsTest, TemperatureStatistics) {
  metrics_.on_tick(0.0, 0.01, 40.0, {0, 0}, {0, 0});
  metrics_.on_tick(1.0, 1.0, 40.0, {0, 0}, {0, 0});
  metrics_.on_tick(2.0, 1.0, 60.0, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(metrics_.peak_temp_c(), 60.0);
  // Time-weighted: 40 for 1s, then 40 held one more second... the signal is
  // sampled at tick ends; average over [0,2] = (40*1 + 40*1)/2 ... 40 until
  // t=2 where it becomes 60 -> average 40.
  EXPECT_NEAR(metrics_.average_temp_c(), 40.0, 1e-9);
}

TEST_F(MetricsTest, EmptyMetricsThrow) {
  EXPECT_THROW(metrics_.average_temp_c(), InvalidArgument);
  EXPECT_THROW(metrics_.peak_temp_c(), InvalidArgument);
}

TEST_F(MetricsTest, CpuTimeAttributedPerClusterAndLevel) {
  // 3 busy LITTLE cores at level 2, 1 busy big core at level 5.
  metrics_.on_tick(0.01, 0.01, 30.0, {2, 5}, {3, 1});
  metrics_.on_tick(0.02, 0.01, 30.0, {2, 5}, {3, 1});
  EXPECT_NEAR(metrics_.cpu_time_s(kLittleCluster, 2), 0.06, 1e-12);
  EXPECT_NEAR(metrics_.cpu_time_s(kBigCluster, 5), 0.02, 1e-12);
  EXPECT_NEAR(metrics_.cpu_time_s(kBigCluster, 0), 0.0, 1e-12);
  EXPECT_NEAR(metrics_.total_cpu_time_s(), 0.08, 1e-12);
}

TEST_F(MetricsTest, QosViolationCounting) {
  CompletedProcess ok;
  ok.app_name = "a";
  ok.qos_violated = false;
  CompletedProcess bad;
  bad.app_name = "b";
  bad.qos_violated = true;
  metrics_.on_process_complete(ok);
  metrics_.on_process_complete(bad);
  metrics_.on_process_complete(bad);
  EXPECT_EQ(metrics_.completed().size(), 3u);
  EXPECT_EQ(metrics_.qos_violations(), 2u);
}

TEST_F(MetricsTest, OverheadAccumulatesPerComponent) {
  metrics_.add_overhead("dvfs", 0.001);
  metrics_.add_overhead("dvfs", 0.002);
  metrics_.add_overhead("migration", 0.005);
  EXPECT_NEAR(metrics_.overhead_s("dvfs"), 0.003, 1e-12);
  EXPECT_NEAR(metrics_.overhead_s("migration"), 0.005, 1e-12);
  EXPECT_DOUBLE_EQ(metrics_.overhead_s("unknown"), 0.0);
  EXPECT_EQ(metrics_.overhead_breakdown().size(), 2u);
  EXPECT_THROW(metrics_.add_overhead("dvfs", -1.0), InvalidArgument);
}

TEST_F(MetricsTest, UtilizationAveragesBusyCores) {
  metrics_.on_tick(0.01, 0.01, 30.0, {0, 0}, {4, 4});  // fully busy
  metrics_.on_tick(1.0, 1.0, 30.0, {0, 0}, {4, 4});
  metrics_.on_tick(2.0, 1.0, 30.0, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(metrics_.peak_utilization(), 1.0);
  EXPECT_NEAR(metrics_.average_utilization(), 1.0, 0.01);
}

TEST_F(MetricsTest, ThrottleEventCounter) {
  EXPECT_EQ(metrics_.throttle_events(), 0u);
  metrics_.on_throttle_event();
  metrics_.on_throttle_event();
  EXPECT_EQ(metrics_.throttle_events(), 2u);
}

TEST_F(MetricsTest, ValidatesVectorSizes) {
  EXPECT_THROW(metrics_.on_tick(0.01, 0.01, 30.0, {0}, {0, 0}),
               InvalidArgument);
  EXPECT_THROW(metrics_.on_tick(0.01, 0.01, 30.0, {0, 0}, {0}),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
