#include "sim/system_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_database.hpp"

namespace topil {
namespace {

class SystemSimTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet_config() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    c.sensor.quantization_c = 0.0;
    return c;
  }

  AppSpec long_app() const {
    return make_single_phase_app("long", 1e13, {2.0, 0.1, 0.9},
                                 {1.0, 0.05, 1.0}, 0.01, false);
  }
};

TEST_F(SystemSimTest, SpawnRunMigrateRetire) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = make_single_phase_app(
      "short", 1e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  sim.request_vf_level(kBigCluster,
                       platform_.cluster(kBigCluster).vf.num_levels() - 1);
  const Pid pid = sim.spawn(app, 1e8, 6);
  EXPECT_TRUE(sim.is_running(pid));
  EXPECT_EQ(sim.process(pid).core(), 6u);
  EXPECT_TRUE(sim.core_occupied(6));
  EXPECT_FALSE(sim.core_occupied(0));

  // 1e9 instructions at 2.362 GIPS -> ~0.42 s.
  sim.run_for(1.0);
  EXPECT_FALSE(sim.is_running(pid));
  ASSERT_EQ(sim.metrics().completed().size(), 1u);
  const CompletedProcess& rec = sim.metrics().completed().front();
  EXPECT_EQ(rec.pid, pid);
  EXPECT_FALSE(rec.qos_violated);
  EXPECT_NEAR(rec.finish_time, 1e9 / 2.362e9, 0.05);
}

TEST_F(SystemSimTest, FairSharingHalvesThroughput) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  sim.request_vf_level(kBigCluster, 0);  // 0.682 GHz
  const AppSpec app = long_app();
  const Pid a = sim.spawn(app, 1e8, 5);
  const Pid b = sim.spawn(app, 1e8, 5);  // same core
  const Pid alone = sim.spawn(app, 1e8, 6);
  sim.run_for(2.0);
  const double shared = sim.process(a).instructions_retired() +
                        sim.process(b).instructions_retired();
  const double solo = sim.process(alone).instructions_retired();
  EXPECT_NEAR(shared, solo, solo * 0.02);
  EXPECT_NEAR(sim.process(a).instructions_retired(),
              sim.process(b).instructions_retired(), solo * 0.02);
}

TEST_F(SystemSimTest, PerClusterDvfsAffectsThroughput) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = long_app();
  const Pid little_pid = sim.spawn(app, 1e8, 0);
  const Pid big_pid = sim.spawn(app, 1e8, 4);
  sim.request_vf_level(kLittleCluster, 0);
  sim.request_vf_level(kBigCluster,
                       platform_.cluster(kBigCluster).vf.num_levels() - 1);
  sim.run_for(1.0);
  EXPECT_GT(sim.process(big_pid).measured_ips(),
            3.0 * sim.process(little_pid).measured_ips());
  EXPECT_NEAR(sim.freq_ghz(kLittleCluster), 0.509, 1e-9);
  EXPECT_NEAR(sim.freq_ghz(kBigCluster), 2.362, 1e-9);
}

TEST_F(SystemSimTest, MigrationMovesProcessAndAppliesPenalty) {
  SimConfig config = quiet_config();
  SystemSim sim(platform_, CoolingConfig::fan(), config);
  const AppSpec app = long_app();
  const Pid pid = sim.spawn(app, 1e8, 0);
  sim.run_for(0.1);
  sim.migrate(pid, 7);
  EXPECT_EQ(sim.process(pid).core(), 7u);
  EXPECT_THROW(sim.migrate(pid, 99), InvalidArgument);
  EXPECT_THROW(sim.migrate(999, 0), InvalidArgument);
}

TEST_F(SystemSimTest, TemperatureRisesUnderLoadAndSensorTracksIt) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = long_app();
  for (CoreId c = 4; c < 8; ++c) sim.spawn(app, 1e8, c);
  sim.request_vf_level(kBigCluster,
                       platform_.cluster(kBigCluster).vf.num_levels() - 1);
  sim.run_for(120.0);
  EXPECT_GT(sim.thermal().max_core_temp_c(), 35.0);
  EXPECT_NEAR(sim.sensor_temp_c(), sim.thermal().max_core_temp_c(), 0.5);
}

TEST_F(SystemSimTest, DtmThrottlesWithoutFanUnderFullLoad) {
  SimConfig config = quiet_config();
  SystemSim sim(platform_, CoolingConfig::no_fan(), config);
  const AppSpec app = long_app();
  for (CoreId c = 0; c < 8; ++c) sim.spawn(app, 1e8, c);
  const std::size_t big_top =
      platform_.cluster(kBigCluster).vf.num_levels() - 1;
  sim.request_vf_level(kLittleCluster,
                       platform_.cluster(kLittleCluster).vf.num_levels() - 1);
  sim.request_vf_level(kBigCluster, big_top);
  sim.run_for(480.0);
  EXPECT_GT(sim.metrics().throttle_events(), 0u);
  EXPECT_LT(sim.vf_level(kBigCluster), big_top);            // clamped
  EXPECT_EQ(sim.requested_vf_level(kBigCluster), big_top);  // request kept
  // DTM holds the chip near the trip point.
  EXPECT_LT(sim.thermal().max_core_temp_c(), 92.0);
}

TEST_F(SystemSimTest, GovernorOverheadConsumesCoreCapacity) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = long_app();
  const Pid on_gov_core = sim.spawn(app, 1e8, 0);
  const Pid reference = sim.spawn(app, 1e8, 1);
  // Charge 20% of core 0 every tick for one second.
  for (int i = 0; i < 100; ++i) {
    sim.charge_overhead("dvfs", 0.002, 0);
    sim.step();
  }
  const double with_overhead = sim.process(on_gov_core).instructions_retired();
  const double without = sim.process(reference).instructions_retired();
  EXPECT_NEAR(with_overhead / without, 0.8, 0.02);
  EXPECT_NEAR(sim.metrics().overhead_s("dvfs"), 0.2, 1e-9);
}

TEST_F(SystemSimTest, NpuBusyWindowAndPower) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  EXPECT_FALSE(sim.npu_active());
  sim.npu_busy_for(0.05);
  EXPECT_TRUE(sim.npu_active());
  sim.step();
  EXPECT_GT(sim.last_power().npu_w, platform_.npu().power_idle_w);
  sim.run_for(0.1);
  EXPECT_FALSE(sim.npu_active());
  sim.step();
  EXPECT_DOUBLE_EQ(sim.last_power().npu_w, platform_.npu().power_idle_w);
}

TEST_F(SystemSimTest, UtilizationTracksOccupancy) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = long_app();
  sim.spawn(app, 1e8, 2);
  sim.run_for(2.0);
  EXPECT_GT(sim.core_utilization(2), 0.95);
  EXPECT_LT(sim.core_utilization(3), 0.05);
}

TEST_F(SystemSimTest, PidsOnCoreAndRunningPids) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = long_app();
  const Pid a = sim.spawn(app, 1e8, 3);
  const Pid b = sim.spawn(app, 1e8, 3);
  EXPECT_EQ(sim.num_running(), 2u);
  EXPECT_EQ(sim.pids_on_core(3), (std::vector<Pid>{a, b}));
  EXPECT_TRUE(sim.pids_on_core(4).empty());
  EXPECT_EQ(sim.running_pids().size(), 2u);
}

TEST_F(SystemSimTest, RunUntilIsExactAndMonotonic) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  sim.run_until(0.5);
  EXPECT_NEAR(sim.now(), 0.5, 1e-9);
  EXPECT_THROW(sim.run_until(0.25), InvalidArgument);
}

TEST_F(SystemSimTest, RetiresProcessFinishingExactlyAtTickBoundary) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const std::size_t top =
      platform_.cluster(kBigCluster).vf.num_levels() - 1;
  sim.request_vf_level(kBigCluster, top);
  const double freq = platform_.cluster(kBigCluster).vf.at(top).freq_ghz;
  // Size the app so it retires its last instruction exactly when the 5th
  // tick ends — the completion epsilon and the retire pass must agree.
  AppSpec app = make_single_phase_app("exact", 1.0, {2.0, 0.0, 0.9},
                                      {1.0, 0.0, 1.0}, 0.0, false);
  app.phases[0].instructions =
      app.phases[0].ips(kBigCluster, freq) * 5 * sim.config().tick_s;
  const Pid pid = sim.spawn(app, 1e6, 6);
  for (int i = 0; i < 4; ++i) sim.step();
  ASSERT_TRUE(sim.is_running(pid));
  sim.step();  // the finishing tick
  EXPECT_FALSE(sim.is_running(pid));
  ASSERT_EQ(sim.metrics().completed().size(), 1u);
  const CompletedProcess& rec = sim.metrics().completed().front();
  EXPECT_EQ(rec.pid, pid);
  EXPECT_NEAR(rec.finish_time, 5 * sim.config().tick_s, 1e-9);
  EXPECT_TRUE(std::isfinite(rec.average_ips));
  EXPECT_GT(rec.average_ips, 0.0);
}

TEST_F(SystemSimTest, QosViolationRecordedWhenTargetMissed) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet_config());
  const AppSpec app = make_single_phase_app(
      "hungry", 1e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  sim.request_vf_level(kLittleCluster, 0);  // 0.509 GHz, cpi 2 -> 254 MIPS
  sim.spawn(app, 2e9, 0);                   // impossible target
  sim.run_for(10.0);
  ASSERT_EQ(sim.metrics().completed().size(), 1u);
  EXPECT_TRUE(sim.metrics().completed().front().qos_violated);
  EXPECT_EQ(sim.metrics().qos_violations(), 1u);
}

TEST_F(SystemSimTest, SustainedShortfallCountsAsViolationDespiteAverage) {
  // An app that runs fast for the first half and starves afterwards can
  // still make its lifetime-average target; the time-based accounting
  // must flag it anyway.
  SimConfig config = quiet_config();
  config.qos.max_below_fraction = 0.10;
  SystemSim sim(platform_, CoolingConfig::fan(), config);
  const AppSpec app = make_single_phase_app(
      "bursty", 8e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  const std::size_t top = platform_.cluster(kBigCluster).vf.num_levels() - 1;
  sim.request_vf_level(kBigCluster, top);  // 2.362 GIPS
  sim.spawn(app, 1.2e9, 5);
  sim.run_for(3.0);                       // ~7.1e9 insts fast
  sim.request_vf_level(kBigCluster, 0);   // starve: 0.682 GIPS < target
  sim.run_for(3.0);                       // finishes slowly
  ASSERT_EQ(sim.metrics().completed().size(), 1u);
  const CompletedProcess& rec = sim.metrics().completed().front();
  EXPECT_GE(rec.average_ips, rec.qos_target_ips);   // average looks fine
  EXPECT_GT(rec.below_target_fraction, 0.10);       // but it starved
  EXPECT_TRUE(rec.qos_violated);
}

TEST_F(SystemSimTest, GracePeriodForgivesRampUp) {
  SimConfig config = quiet_config();
  SystemSim sim(platform_, CoolingConfig::fan(), config);
  const AppSpec app = make_single_phase_app(
      "ramp", 5e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  // Start at the lowest level (below target), ramp after one second --
  // within the 2 s grace period, so no below-time accrues.
  sim.request_vf_level(kBigCluster, 0);
  sim.spawn(app, 1.5e9, 5);
  sim.run_for(1.0);
  sim.request_vf_level(kBigCluster,
                       platform_.cluster(kBigCluster).vf.num_levels() - 1);
  sim.run_for(5.0);
  ASSERT_EQ(sim.metrics().completed().size(), 1u);
  const CompletedProcess& rec = sim.metrics().completed().front();
  EXPECT_LT(rec.below_target_fraction, 0.05);
  EXPECT_FALSE(rec.qos_violated);
}

}  // namespace
}  // namespace topil
