#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "sim/perf_counters.hpp"
#include "sim/proc_fs.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

class PerfProcTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  SystemSim sim_{platform_, CoolingConfig::fan(), SimConfig{}};

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.02, false);
};

TEST_F(PerfProcTest, ReadCostScalesLinearlyWithPids) {
  EXPECT_DOUBLE_EQ(PerfApi::read_cost_s(0), PerfApi::kFixedReadCostS);
  EXPECT_NEAR(PerfApi::read_cost_s(16),
              PerfApi::kFixedReadCostS + 16 * PerfApi::kPerPidReadCostS,
              1e-12);
  // Paper: ~0.54 ms per DVFS-loop invocation at 16 applications.
  EXPECT_NEAR(PerfApi::read_cost_s(16), 0.54e-3, 0.1e-3);
}

TEST_F(PerfProcTest, ReadAllReturnsSamplesAndChargesCost) {
  const Pid a = sim_.spawn(app_, 1e8, 0);
  const Pid b = sim_.spawn(app_, 1e8, 5);
  sim_.run_for(0.5);
  const auto samples = PerfApi::read_all(sim_, "dvfs");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].pid, a);
  EXPECT_EQ(samples[1].pid, b);
  for (const auto& s : samples) {
    EXPECT_GT(s.ips, 0.0);
    EXPECT_GT(s.l2d_rate, 0.0);
    EXPECT_GT(s.instructions, 0.0);
    EXPECT_NEAR(s.l2d_rate / s.ips, 0.02, 1e-6);
  }
  EXPECT_NEAR(sim_.metrics().overhead_s("dvfs"), PerfApi::read_cost_s(2),
              1e-12);
}

TEST_F(PerfProcTest, ProcFsListsGovernorVisibleState) {
  sim_.spawn(app_, 3e8, 2);
  sim_.run_for(0.2);
  sim_.spawn(app_, 4e8, 6);
  const auto procs = ProcFs::list(sim_);
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].core, 2u);
  EXPECT_DOUBLE_EQ(procs[0].qos_target_ips, 3e8);
  EXPECT_DOUBLE_EQ(procs[0].arrival_time, 0.0);
  EXPECT_EQ(procs[1].core, 6u);
  EXPECT_NEAR(procs[1].arrival_time, 0.2, 1e-9);
}

TEST_F(PerfProcTest, EmptySystemYieldsEmptyViews) {
  EXPECT_TRUE(PerfApi::read_all(sim_, "dvfs").empty());
  EXPECT_TRUE(ProcFs::list(sim_).empty());
}

}  // namespace
}  // namespace topil
