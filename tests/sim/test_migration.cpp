#include "sim/migration.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

TEST(MigrationPenalty, ScalesWithL2dIntensity) {
  const MigrationConfig config;
  const double light = migration_penalty(config, 0.004, false);
  const double heavy = migration_penalty(config, 0.04, false);
  EXPECT_GT(heavy, light);
  EXPECT_NEAR(light, 0.004 * config.penalty_per_l2d, 1e-12);
}

TEST(MigrationPenalty, CapsAtMaxPenalty) {
  const MigrationConfig config;
  EXPECT_DOUBLE_EQ(migration_penalty(config, 10.0, false),
                   config.max_penalty);
}

TEST(MigrationPenalty, SameClusterIsCheaper) {
  const MigrationConfig config;
  const double cross = migration_penalty(config, 0.02, false);
  const double same = migration_penalty(config, 0.02, true);
  EXPECT_NEAR(same, cross * config.same_cluster_factor, 1e-12);
}

TEST(MigrationPenalty, RejectsNegativeIntensity) {
  EXPECT_THROW(migration_penalty(MigrationConfig{}, -1.0, false),
               InvalidArgument);
}

// The paper's worst-case experiment: periodically migrating between the
// clusters every 500 ms costs compute-bound apps well under 1% and
// memory-bound apps a few percent.
class WorstCaseMigration : public ::testing::TestWithParam<
                               std::pair<const char*, double>> {};

TEST_P(WorstCaseMigration, OverheadWithinPaperBallpark) {
  const auto [app_name, max_overhead] = GetParam();
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec& app = AppDatabase::instance().by_name(app_name);

  SimConfig config;
  config.sensor.noise_stddev_c = 0.0;

  auto run = [&](bool ping_pong) {
    SystemSim sim(platform, CoolingConfig::fan(), config);
    sim.request_vf_level(kLittleCluster,
                         platform.cluster(kLittleCluster).vf.num_levels() - 1);
    sim.request_vf_level(kBigCluster,
                         platform.cluster(kBigCluster).vf.num_levels() - 1);
    const Pid pid = sim.spawn(app, 1.0, ping_pong ? 0 : 4);
    double next_migration = 0.5;
    CoreId target = 4;
    while (sim.now() < 10.0) {
      if (ping_pong && sim.now() >= next_migration) {
        sim.migrate(pid, target);
        target = (target == 4) ? 0 : 4;
        next_migration += 0.5;
      }
      sim.step();
    }
    return sim.process(pid).instructions_retired();
  };

  // Stationary runs on each cluster for the averaged reference.
  SystemSim little_sim(platform, CoolingConfig::fan(), config);
  little_sim.request_vf_level(
      kLittleCluster, platform.cluster(kLittleCluster).vf.num_levels() - 1);
  const Pid lp = little_sim.spawn(app, 1.0, 0);
  little_sim.run_for(10.0);
  const double insts_little = little_sim.process(lp).instructions_retired();

  SystemSim big_sim(platform, CoolingConfig::fan(), config);
  big_sim.request_vf_level(
      kBigCluster, platform.cluster(kBigCluster).vf.num_levels() - 1);
  const Pid bp = big_sim.spawn(app, 1.0, 4);
  big_sim.run_for(10.0);
  const double insts_big = big_sim.process(bp).instructions_retired();

  const double migrated = run(true);
  // Paper Eq.: m = avg(1/t_big, 1/t_little) / (1/t_migrate) - 1; with a
  // fixed horizon instruction counts stand in for rates.
  const double overhead =
      0.5 * (insts_little + insts_big) / migrated - 1.0;
  EXPECT_LT(overhead, max_overhead) << app_name;
  EXPECT_GT(overhead, -0.05) << app_name;
}

INSTANTIATE_TEST_SUITE_P(
    Apps, WorstCaseMigration,
    ::testing::Values(std::make_pair("swaptions", 0.01),
                      std::make_pair("blackscholes", 0.05),
                      std::make_pair("canneal", 0.06),
                      std::make_pair("heat-3d", 0.04)),
    [](const auto& info) {
      std::string name = info.param.first;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace topil
