// The determinism contract of the parallel design-time pipeline: any job
// count produces byte-identical results to the serial (`jobs == 1`) path.

#include <gtest/gtest.h>

#include "il/oracle.hpp"
#include "il/pipeline.hpp"
#include "il/trace_collector.hpp"

namespace topil::il {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  std::vector<Scenario> small_scenarios() const {
    const auto& db = AppDatabase::instance();
    std::vector<Scenario> scenarios(3);
    scenarios[0].aoi = &db.by_name("seidel-2d");
    scenarios[0].background[0] = &db.by_name("syr2k");
    scenarios[0].background[5] = &db.by_name("syr2k");
    scenarios[1].aoi = &db.by_name("heat-3d");
    scenarios[1].background[1] = &db.by_name("jacobi-2d");
    scenarios[2].aoi = &db.by_name("syr2k");
    return scenarios;
  }

  static void expect_identical(const ScenarioTraces& a,
                               const ScenarioTraces& b) {
    ASSERT_EQ(a.free_cores(), b.free_cores());
    ASSERT_EQ(a.grid(kLittleCluster), b.grid(kLittleCluster));
    ASSERT_EQ(a.grid(kBigCluster), b.grid(kBigCluster));
    for (std::size_t l : a.grid(kLittleCluster)) {
      for (std::size_t big : a.grid(kBigCluster)) {
        for (CoreId core : a.free_cores()) {
          const TraceResult& ra = a.at({l, big}, core);
          const TraceResult& rb = b.at({l, big}, core);
          // Bitwise float equality: the parallel path must not reorder a
          // single arithmetic operation.
          EXPECT_EQ(ra.aoi_ips, rb.aoi_ips);
          EXPECT_EQ(ra.aoi_l2d_rate, rb.aoi_l2d_rate);
          EXPECT_EQ(ra.peak_temp_c, rb.peak_temp_c);
        }
      }
    }
  }
};

TEST_F(ParallelDeterminismTest, CollectAllMatchesSerialBitForBit) {
  const TraceCollector collector(platform_, CoolingConfig::fan());
  const std::vector<Scenario> scenarios = small_scenarios();
  const auto serial = collector.collect_all(scenarios, /*jobs=*/1);
  const auto parallel = collector.collect_all(scenarios, /*jobs=*/4);
  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(parallel.size(), scenarios.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST_F(ParallelDeterminismTest, OracleExtractionMatchesSerialBitForBit) {
  const TraceCollector collector(platform_, CoolingConfig::fan());
  const OracleExtractor extractor(platform_);
  const ScenarioTraces traces = collector.collect(small_scenarios()[0]);
  const std::vector<TrainingExample> serial =
      extractor.extract(traces, /*jobs=*/1);
  const std::vector<TrainingExample> parallel =
      extractor.extract(traces, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_GT(serial.size(), 0u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].features, parallel[i].features);
    EXPECT_EQ(serial[i].labels, parallel[i].labels);
  }
}

TEST_F(ParallelDeterminismTest, DatasetBuildMatchesSerialBitForBit) {
  const IlPipeline pipeline(platform_, CoolingConfig::fan());
  PipelineConfig config;
  config.num_scenarios = 4;
  config.seed = 13;
  config.oracle.qos_fractions = {0.3, 0.6};
  config.max_examples = 2000;

  config.jobs = 1;
  const Dataset serial = pipeline.build_dataset(config);
  config.jobs = 4;
  const Dataset parallel = pipeline.build_dataset(config);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_GT(serial.size(), 0u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.at(i).features, parallel.at(i).features);
    EXPECT_EQ(serial.at(i).labels, parallel.at(i).labels);
  }
}

}  // namespace
}  // namespace topil::il
