#include "il/features.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil::il {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  FeatureExtractor extractor_{platform_};

  FeatureInput valid_input() const {
    FeatureInput in;
    in.aoi_ips = 4.71e8;
    in.aoi_l2d_rate = 7e6;
    in.aoi_core = 3;
    in.aoi_qos_target = 4e8;
    in.cluster_freq_ghz = {1.844, 0.682};
    in.freq_without_aoi_ghz = {1.402, 0.682};
    in.core_utilization = {1, 1, 1, 0, 1, 1, 0, 1};
    return in;
  }
};

TEST_F(FeaturesTest, TwentyOneFeaturesOnHikey) {
  // Paper Table: 1+1+8+1+2+8 = 21 features; one output per core.
  EXPECT_EQ(extractor_.num_features(), 21u);
  EXPECT_EQ(extractor_.num_outputs(), 8u);
}

TEST_F(FeaturesTest, LayoutMatchesPaperTable) {
  const std::vector<float> f = extractor_.extract(valid_input());
  ASSERT_EQ(f.size(), 21u);
  EXPECT_NEAR(f[0], 0.471f, 1e-5);   // AoI QoS in GIPS
  EXPECT_NEAR(f[1], 0.007f, 1e-5);   // L2D rate in G/s
  for (CoreId c = 0; c < 8; ++c) {   // one-hot current mapping
    EXPECT_FLOAT_EQ(f[2 + c], c == 3 ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(f[10], 0.4f, 1e-5);    // QoS target in GIPS
  // f~_{x\AoI} / f_x per cluster (the paper's Fig. example: 0.76 / 1.00).
  EXPECT_NEAR(f[11], 1.402f / 1.844f, 1e-5);
  EXPECT_NEAR(f[12], 1.0f, 1e-5);
  for (CoreId c = 0; c < 8; ++c) {   // utilizations
    EXPECT_FLOAT_EQ(f[13 + c], valid_input().core_utilization[c]);
  }
}

TEST_F(FeaturesTest, ValidatesShapeAndRanges) {
  FeatureInput in = valid_input();
  in.aoi_core = 8;
  EXPECT_THROW(extractor_.extract(in), InvalidArgument);
  in = valid_input();
  in.cluster_freq_ghz = {1.0};
  EXPECT_THROW(extractor_.extract(in), InvalidArgument);
  in = valid_input();
  in.core_utilization.pop_back();
  EXPECT_THROW(extractor_.extract(in), InvalidArgument);
  in = valid_input();
  in.cluster_freq_ghz = {0.0, 1.0};
  EXPECT_THROW(extractor_.extract(in), InvalidArgument);
}

class EstimateMinLevel : public ::testing::Test {
 protected:
  VFTable vf_{{{0.5, 0.7}, {1.0, 0.8}, {1.5, 0.9}, {2.0, 1.0}}};
};

TEST_F(EstimateMinLevel, LinearScalingUp) {
  // Measured 100 MIPS at 0.5 GHz; target 250 MIPS -> needs 1.25 GHz
  // under linear scaling -> level 2 (1.5 GHz).
  EXPECT_EQ(estimate_min_level(vf_, 100e6, 0.5, 250e6), 2u);
}

TEST_F(EstimateMinLevel, LinearScalingDown) {
  // Measured 400 MIPS at 2.0 GHz; target 90 MIPS -> 0.45 GHz -> level 0.
  EXPECT_EQ(estimate_min_level(vf_, 400e6, 2.0, 90e6), 0u);
}

TEST_F(EstimateMinLevel, ExactBoundaryPicksThatLevel) {
  // 100 MIPS at 1.0 GHz; target 150 MIPS -> exactly 1.5 GHz -> level 2.
  EXPECT_EQ(estimate_min_level(vf_, 100e6, 1.0, 150e6), 2u);
}

TEST_F(EstimateMinLevel, UnattainableReturnsSentinel) {
  EXPECT_EQ(estimate_min_level(vf_, 100e6, 2.0, 200e6), vf_.num_levels());
}

TEST_F(EstimateMinLevel, NoMeasurementAssumesWorstCase) {
  EXPECT_EQ(estimate_min_level(vf_, 0.0, 1.0, 100e6), vf_.num_levels());
}

TEST_F(EstimateMinLevel, ValidatesArguments) {
  EXPECT_THROW(estimate_min_level(vf_, 1e8, 0.0, 1e8), InvalidArgument);
  EXPECT_THROW(estimate_min_level(vf_, 1e8, 1.0, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
