#include "il/trace_collector.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil::il {
namespace {

class TraceCollectorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  TraceCollector collector_{platform_, CoolingConfig::fan()};

  Scenario seidel_scenario() const {
    // The paper's illustrative example: background on all cores except
    // 3 and 6, seidel-2d as the AoI.
    Scenario s;
    s.aoi = &AppDatabase::instance().by_name("seidel-2d");
    const AppSpec& bg = AppDatabase::instance().by_name("syr2k");
    for (CoreId core : {0u, 1u, 2u, 4u, 5u, 7u}) {
      s.background[core] = &bg;
    }
    return s;
  }
};

TEST_F(TraceCollectorTest, FreeCoresDerivedFromBackground) {
  const Scenario s = seidel_scenario();
  EXPECT_EQ(s.free_cores(platform_), (std::vector<CoreId>{3, 6}));
  Scenario empty;
  empty.aoi = s.aoi;
  EXPECT_EQ(empty.free_cores(platform_).size(), 8u);
}

TEST_F(TraceCollectorTest, DefaultGridsCoverEverySecondLevelPlusTop) {
  const ScenarioTraces traces = collector_.collect(seidel_scenario());
  const auto& lg = traces.grid(kLittleCluster);
  const auto& bg = traces.grid(kBigCluster);
  EXPECT_EQ(lg.front(), 0u);
  EXPECT_EQ(lg.back(),
            platform_.cluster(kLittleCluster).vf.num_levels() - 1);
  EXPECT_EQ(bg.back(), platform_.cluster(kBigCluster).vf.num_levels() - 1);
  EXPECT_GE(lg.size(), 4u);
}

TEST_F(TraceCollectorTest, TracesExistForEveryComboAndFreeCore) {
  const ScenarioTraces traces = collector_.collect(seidel_scenario());
  for (std::size_t li : traces.grid(kLittleCluster)) {
    for (std::size_t bi : traces.grid(kBigCluster)) {
      for (CoreId core : traces.free_cores()) {
        EXPECT_TRUE(traces.has({li, bi}, core));
        const TraceResult& r = traces.at({li, bi}, core);
        EXPECT_GT(r.aoi_ips, 0.0);
        EXPECT_GT(r.peak_temp_c, 25.0);
        EXPECT_LT(r.peak_temp_c, 100.0);
        EXPECT_NEAR(r.aoi_l2d_rate / r.aoi_ips, 0.015, 1e-9);
      }
    }
  }
}

TEST_F(TraceCollectorTest, AoiPerformanceDependsOnOwnClusterOnly) {
  const ScenarioTraces traces = collector_.collect(seidel_scenario());
  const auto& lg = traces.grid(kLittleCluster);
  const auto& bgr = traces.grid(kBigCluster);
  // AoI on LITTLE core 3: IPS grows with f_l, constant in f_b.
  const double low = traces.at({lg.front(), bgr.front()}, 3).aoi_ips;
  const double high_l = traces.at({lg.back(), bgr.front()}, 3).aoi_ips;
  const double high_b = traces.at({lg.front(), bgr.back()}, 3).aoi_ips;
  EXPECT_GT(high_l, low * 1.5);
  EXPECT_NEAR(high_b, low, low * 1e-9);
}

TEST_F(TraceCollectorTest, TemperatureMonotoneInVfLevels) {
  const ScenarioTraces traces = collector_.collect(seidel_scenario());
  const auto& lg = traces.grid(kLittleCluster);
  const auto& bgr = traces.grid(kBigCluster);
  for (std::size_t i = 1; i < bgr.size(); ++i) {
    EXPECT_GT(traces.at({lg.front(), bgr[i]}, 3).peak_temp_c,
              traces.at({lg.front(), bgr[i - 1]}, 3).peak_temp_c);
  }
  for (std::size_t i = 1; i < lg.size(); ++i) {
    EXPECT_GT(traces.at({lg[i], bgr.front()}, 6).peak_temp_c,
              traces.at({lg[i - 1], bgr.front()}, 6).peak_temp_c);
  }
}

TEST_F(TraceCollectorTest, NoFanTracesAreHotter) {
  TraceCollector nofan(platform_, CoolingConfig::no_fan());
  const Scenario s = seidel_scenario();
  const ScenarioTraces fan_traces = collector_.collect(s);
  const ScenarioTraces nofan_traces = nofan.collect(s);
  const std::vector<std::size_t> top = {
      fan_traces.grid(kLittleCluster).back(),
      fan_traces.grid(kBigCluster).back()};
  EXPECT_GT(nofan_traces.at(top, 3).peak_temp_c,
            fan_traces.at(top, 3).peak_temp_c + 3.0);
}

TEST_F(TraceCollectorTest, CustomGridRespected) {
  TraceCollector::Config config;
  config.level_grids = {{0, 4, 8}, {0, 4, 8}};
  TraceCollector custom(platform_, CoolingConfig::fan(), config);
  const ScenarioTraces traces = custom.collect(seidel_scenario());
  EXPECT_EQ(traces.grid(kLittleCluster), (std::vector<std::size_t>{0, 4, 8}));
  EXPECT_TRUE(traces.has({4, 8}, 3));
  EXPECT_FALSE(traces.has({1, 8}, 3));
  EXPECT_THROW(traces.at({1, 8}, 3), InvalidArgument);
}

TEST_F(TraceCollectorTest, ValidatesScenario) {
  Scenario bad;
  EXPECT_THROW(collector_.collect(bad), InvalidArgument);  // no AoI
  Scenario full;
  full.aoi = &AppDatabase::instance().by_name("adi");
  for (CoreId core = 0; core < 8; ++core) {
    full.background[core] = &AppDatabase::instance().by_name("syr2k");
  }
  EXPECT_THROW(collector_.collect(full), InvalidArgument);  // no free core
  TraceCollector::Config bad_grid;
  bad_grid.level_grids = {{0, 99}, {0}};
  EXPECT_THROW(
      TraceCollector(platform_, CoolingConfig::fan(), bad_grid),
      InvalidArgument);
}

TEST_F(TraceCollectorTest, BatchedSolvesBitIdenticalToScalar) {
  // The batched collector solves every AoI placement of one VF combination
  // in a single SoA substitution sweep; each column must reproduce the
  // scalar per-placement solve bit-for-bit.
  TraceCollector::Config scalar_cfg;
  scalar_cfg.integrator = ThermalIntegrator::Exponential;
  TraceCollector::Config batched_cfg = scalar_cfg;
  batched_cfg.batched_solves = true;
  const TraceCollector scalar(platform_, CoolingConfig::fan(), scalar_cfg);
  const TraceCollector batched(platform_, CoolingConfig::fan(), batched_cfg);

  // Two scenarios: the 2-free-core paper example and an empty-background
  // scenario where all 8 placements batch into one 8-column solve.
  Scenario open;
  open.aoi = &AppDatabase::instance().by_name("adi");
  for (const Scenario& s : {seidel_scenario(), open}) {
    const ScenarioTraces a = scalar.collect(s);
    const ScenarioTraces b = batched.collect(s);
    ASSERT_EQ(a.free_cores(), b.free_cores());
    for (std::size_t li : a.grid(kLittleCluster)) {
      for (std::size_t bi : a.grid(kBigCluster)) {
        for (CoreId core : a.free_cores()) {
          const TraceResult& ra = a.at({li, bi}, core);
          const TraceResult& rb = b.at({li, bi}, core);
          EXPECT_EQ(ra.peak_temp_c, rb.peak_temp_c);
          EXPECT_EQ(ra.aoi_ips, rb.aoi_ips);
          EXPECT_EQ(ra.aoi_l2d_rate, rb.aoi_l2d_rate);
        }
      }
    }
  }
}

TEST_F(TraceCollectorTest, SteadyTempsLeakageCoupledFixedPoint) {
  std::vector<double> activity(8, 1.0);
  const std::vector<std::size_t> top = {
      platform_.cluster(kLittleCluster).vf.num_levels() - 1,
      platform_.cluster(kBigCluster).vf.num_levels() - 1};
  const auto temps = collector_.steady_temps(top, activity);
  // The coupled fixed point must be hotter than a single cold-leakage
  // solve (leakage adds heat as temperature rises).
  PowerModel pm(platform_);
  Floorplan fp = Floorplan::for_platform(platform_);
  ThermalModel tm(platform_, fp, CoolingConfig::fan());
  const auto cold = tm.steady_state(
      pm.compute(top, activity, std::vector<double>(8, 25.0), false));
  double max_coupled = 0.0;
  double max_cold = 0.0;
  for (CoreId c = 0; c < 8; ++c) {
    max_coupled = std::max(max_coupled, temps[fp.core_nodes[c]]);
    max_cold = std::max(max_cold, cold[fp.core_nodes[c]]);
  }
  EXPECT_GT(max_coupled, max_cold);
  EXPECT_LT(max_coupled, max_cold + 10.0);  // weak feedback, not runaway
}

}  // namespace
}  // namespace topil::il
