#include "il/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil::il {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  TraceCollector collector_{platform_, CoolingConfig::fan()};

  Scenario scenario(const char* aoi_name) const {
    Scenario s;
    s.aoi = &AppDatabase::instance().by_name(aoi_name);
    const AppSpec& bg = AppDatabase::instance().by_name("syr2k");
    for (CoreId core : {0u, 1u, 2u, 4u, 5u, 7u}) {
      s.background[core] = &bg;
    }
    return s;
  }
};

TEST_F(OracleTest, SoftLabelFollowsEquationFour) {
  OracleExtractor extractor(platform_);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.0, 40.0), 1.0);
  EXPECT_NEAR(extractor.soft_label(41.0, 40.0), std::exp(-1.0), 1e-12);
  // Paper example: 46.6 degC vs optimum 42.5 degC -> label 0.02.
  EXPECT_NEAR(extractor.soft_label(46.6, 42.5), 0.0166, 0.002);
  EXPECT_THROW(extractor.soft_label(39.0, 40.0), InvalidArgument);
}

TEST_F(OracleTest, HardLabelAblation) {
  OracleConfig config;
  config.hard_labels = true;
  OracleExtractor extractor(platform_, config);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.0, 40.0), 1.0);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.5, 40.0), 0.0);
}

TEST_F(OracleTest, AlphaControlsTolerance) {
  OracleConfig sharp;
  sharp.alpha = 4.0;
  OracleConfig tolerant;
  tolerant.alpha = 0.25;
  EXPECT_LT(OracleExtractor(platform_, sharp).soft_label(41.0, 40.0),
            OracleExtractor(platform_, tolerant).soft_label(41.0, 40.0));
}

TEST_F(OracleTest, ExamplesHaveConsistentShape) {
  const ScenarioTraces traces = collector_.collect(scenario("seidel-2d"));
  const OracleExtractor extractor(platform_);
  const auto examples = extractor.extract(traces);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_EQ(ex.features.size(), 21u);
    EXPECT_EQ(ex.labels.size(), 8u);
    // Background-occupied cores are labeled 0.
    for (CoreId core : {0u, 1u, 2u, 4u, 5u, 7u}) {
      EXPECT_FLOAT_EQ(ex.labels[core], 0.0f);
    }
    // Free cores: -1 (infeasible) or (0, 1].
    for (CoreId core : {3u, 6u}) {
      const float l = ex.labels[core];
      EXPECT_TRUE(l == -1.0f || (l > 0.0f && l <= 1.0f)) << l;
    }
  }
}

TEST_F(OracleTest, BestFeasibleMappingGetsLabelOne) {
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  const auto examples = OracleExtractor(platform_).extract(traces);
  for (const auto& ex : examples) {
    float best = -2.0f;
    for (float l : ex.labels) best = std::max(best, l);
    EXPECT_NEAR(best, 1.0f, 1e-6) << "some mapping must be optimal";
  }
}

TEST_F(OracleTest, OneExamplePerSourceCoreAndDeduplication) {
  const ScenarioTraces traces = collector_.collect(scenario("seidel-2d"));
  const auto examples = OracleExtractor(platform_).extract(traces);
  // Sources are the two free cores: the one-hot mapping feature is set on
  // core 3 or core 6 only (features[2+core]).
  std::size_t on3 = 0;
  std::size_t on6 = 0;
  for (const auto& ex : examples) {
    if (ex.features[2 + 3] > 0.5f) ++on3;
    if (ex.features[2 + 6] > 0.5f) ++on6;
  }
  EXPECT_GT(on3, 0u);
  EXPECT_GT(on6, 0u);
  EXPECT_EQ(on3 + on6, examples.size());
  // Deduplication: no two identical examples.
  for (std::size_t i = 0; i < examples.size(); ++i) {
    for (std::size_t j = i + 1; j < examples.size(); ++j) {
      EXPECT_FALSE(examples[i].features == examples[j].features &&
                   examples[i].labels == examples[j].labels);
    }
  }
}

TEST_F(OracleTest, AdiOraclePrefersBigClusterWhenBackgroundIsLight) {
  // The motivational claim, at the oracle level: for adi with a light
  // background requirement, mapping to the big cluster is cooler (the
  // LITTLE cluster would need its top level, the big one its bottom).
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  const auto& lg = traces.grid(kLittleCluster);
  const auto& bgr = traces.grid(kBigCluster);
  const std::vector<std::size_t> top = {lg.back(), bgr.back()};
  const double target = 0.3 * traces.at(top, 6).aoi_ips;

  // Eq. 3 with background requirements at the bottom of both clusters.
  auto min_levels_for = [&](CoreId core, ClusterId cluster) {
    std::vector<std::size_t> levels = {lg.front(), bgr.front()};
    for (std::size_t gi : traces.grid(cluster)) {
      levels[cluster] = gi;
      if (traces.at(levels, core).aoi_ips >= target) return levels;
    }
    ADD_FAILURE() << "target unattainable on core " << core;
    return levels;
  };
  const auto levels3 = min_levels_for(3, kLittleCluster);
  const auto levels6 = min_levels_for(6, kBigCluster);
  EXPECT_LT(traces.at(levels6, 6).peak_temp_c,
            traces.at(levels3, 3).peak_temp_c);
  // And the level structure matches the paper: top-ish LITTLE level
  // versus the lowest big level.
  EXPECT_GE(levels3[kLittleCluster], lg[lg.size() - 2]);
  EXPECT_EQ(levels6[kBigCluster], bgr.front());
}

TEST_F(OracleTest, UnattainableTargetsProduceMinusOneLabels) {
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  OracleConfig config;
  config.qos_fractions = {0.95};  // only the big cluster at peak can serve
  const auto examples = OracleExtractor(platform_, config).extract(traces);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_FLOAT_EQ(ex.labels[3], -1.0f);  // LITTLE core infeasible
    EXPECT_GT(ex.labels[6], 0.0f);
  }
}

TEST_F(OracleTest, ValidatesConfig) {
  OracleConfig bad;
  bad.qos_fractions = {};
  EXPECT_THROW(OracleExtractor(platform_, bad), InvalidArgument);
  bad = OracleConfig{};
  bad.alpha = 0.0;
  EXPECT_THROW(OracleExtractor(platform_, bad), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
