#include "il/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace topil::il {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  TraceCollector collector_{platform_, CoolingConfig::fan()};

  Scenario scenario(const char* aoi_name) const {
    Scenario s;
    s.aoi = &AppDatabase::instance().by_name(aoi_name);
    const AppSpec& bg = AppDatabase::instance().by_name("syr2k");
    for (CoreId core : {0u, 1u, 2u, 4u, 5u, 7u}) {
      s.background[core] = &bg;
    }
    return s;
  }
};

TEST_F(OracleTest, SoftLabelFollowsEquationFour) {
  OracleExtractor extractor(platform_);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.0, 40.0), 1.0);
  EXPECT_NEAR(extractor.soft_label(41.0, 40.0), std::exp(-1.0), 1e-12);
  // Paper example: 46.6 degC vs optimum 42.5 degC -> label 0.02.
  EXPECT_NEAR(extractor.soft_label(46.6, 42.5), 0.0166, 0.002);
  EXPECT_THROW(extractor.soft_label(39.0, 40.0), InvalidArgument);
}

TEST_F(OracleTest, HardLabelAblation) {
  OracleConfig config;
  config.hard_labels = true;
  OracleExtractor extractor(platform_, config);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.0, 40.0), 1.0);
  EXPECT_DOUBLE_EQ(extractor.soft_label(40.5, 40.0), 0.0);
}

TEST_F(OracleTest, AlphaControlsTolerance) {
  OracleConfig sharp;
  sharp.alpha = 4.0;
  OracleConfig tolerant;
  tolerant.alpha = 0.25;
  EXPECT_LT(OracleExtractor(platform_, sharp).soft_label(41.0, 40.0),
            OracleExtractor(platform_, tolerant).soft_label(41.0, 40.0));
}

TEST_F(OracleTest, ExamplesHaveConsistentShape) {
  const ScenarioTraces traces = collector_.collect(scenario("seidel-2d"));
  const OracleExtractor extractor(platform_);
  const auto examples = extractor.extract(traces);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_EQ(ex.features.size(), 21u);
    EXPECT_EQ(ex.labels.size(), 8u);
    // Background-occupied cores are labeled 0.
    for (CoreId core : {0u, 1u, 2u, 4u, 5u, 7u}) {
      EXPECT_FLOAT_EQ(ex.labels[core], 0.0f);
    }
    // Free cores: -1 (infeasible) or (0, 1].
    for (CoreId core : {3u, 6u}) {
      const float l = ex.labels[core];
      EXPECT_TRUE(l == -1.0f || (l > 0.0f && l <= 1.0f)) << l;
    }
  }
}

TEST_F(OracleTest, BestFeasibleMappingGetsLabelOne) {
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  const auto examples = OracleExtractor(platform_).extract(traces);
  for (const auto& ex : examples) {
    float best = -2.0f;
    for (float l : ex.labels) best = std::max(best, l);
    EXPECT_NEAR(best, 1.0f, 1e-6) << "some mapping must be optimal";
  }
}

TEST_F(OracleTest, OneExamplePerSourceCoreAndDeduplication) {
  const ScenarioTraces traces = collector_.collect(scenario("seidel-2d"));
  const auto examples = OracleExtractor(platform_).extract(traces);
  // Sources are the two free cores: the one-hot mapping feature is set on
  // core 3 or core 6 only (features[2+core]).
  std::size_t on3 = 0;
  std::size_t on6 = 0;
  for (const auto& ex : examples) {
    if (ex.features[2 + 3] > 0.5f) ++on3;
    if (ex.features[2 + 6] > 0.5f) ++on6;
  }
  EXPECT_GT(on3, 0u);
  EXPECT_GT(on6, 0u);
  EXPECT_EQ(on3 + on6, examples.size());
  // Deduplication: no two identical examples.
  for (std::size_t i = 0; i < examples.size(); ++i) {
    for (std::size_t j = i + 1; j < examples.size(); ++j) {
      EXPECT_FALSE(examples[i].features == examples[j].features &&
                   examples[i].labels == examples[j].labels);
    }
  }
}

TEST_F(OracleTest, AdiOraclePrefersBigClusterWhenBackgroundIsLight) {
  // The motivational claim, at the oracle level: for adi with a light
  // background requirement, mapping to the big cluster is cooler (the
  // LITTLE cluster would need its top level, the big one its bottom).
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  const auto& lg = traces.grid(kLittleCluster);
  const auto& bgr = traces.grid(kBigCluster);
  const std::vector<std::size_t> top = {lg.back(), bgr.back()};
  const double target = 0.3 * traces.at(top, 6).aoi_ips;

  // Eq. 3 with background requirements at the bottom of both clusters.
  auto min_levels_for = [&](CoreId core, ClusterId cluster) {
    std::vector<std::size_t> levels = {lg.front(), bgr.front()};
    for (std::size_t gi : traces.grid(cluster)) {
      levels[cluster] = gi;
      if (traces.at(levels, core).aoi_ips >= target) return levels;
    }
    ADD_FAILURE() << "target unattainable on core " << core;
    return levels;
  };
  const auto levels3 = min_levels_for(3, kLittleCluster);
  const auto levels6 = min_levels_for(6, kBigCluster);
  EXPECT_LT(traces.at(levels6, 6).peak_temp_c,
            traces.at(levels3, 3).peak_temp_c);
  // And the level structure matches the paper: top-ish LITTLE level
  // versus the lowest big level.
  EXPECT_GE(levels3[kLittleCluster], lg[lg.size() - 2]);
  EXPECT_EQ(levels6[kBigCluster], bgr.front());
}

TEST_F(OracleTest, UnattainableTargetsProduceMinusOneLabels) {
  const ScenarioTraces traces = collector_.collect(scenario("adi"));
  OracleConfig config;
  config.qos_fractions = {0.95};  // only the big cluster at peak can serve
  const auto examples = OracleExtractor(platform_, config).extract(traces);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_FLOAT_EQ(ex.labels[3], -1.0f);  // LITTLE core infeasible
    EXPECT_GT(ex.labels[6], 0.0f);
  }
}

TEST_F(OracleTest, ValidatesConfig) {
  OracleConfig bad;
  bad.qos_fractions = {};
  EXPECT_THROW(OracleExtractor(platform_, bad), InvalidArgument);
  bad = OracleConfig{};
  bad.alpha = 0.0;
  EXPECT_THROW(OracleExtractor(platform_, bad), InvalidArgument);
}

std::size_t linear_scan(std::size_t start, std::size_t size,
                        double target_ips,
                        const std::vector<double>& ips) {
  for (std::size_t i = start; i < size; ++i) {
    if (ips[i] >= target_ips) return i;
  }
  return size;
}

TEST(MinIndexMeetingTarget, MatchesLinearScanOnRandomMonotoneCurves) {
  // Property: on any non-decreasing IPS curve the partition-point binary
  // search returns exactly the index a left-to-right scan would, for any
  // start offset and any target — including targets below the first
  // level, above the last, and exactly equal to grid points.
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t size = 1 + rng.index(12);
    std::vector<double> ips(size);
    double level = rng.uniform(1e7, 1e8);
    for (std::size_t i = 0; i < size; ++i) {
      // Strictly increasing steps.
      level += rng.uniform(1e6, 5e7);
      ips[i] = level;
    }
    const std::size_t start = rng.index(size + 1);
    double target = 0.0;
    switch (rng.index(4)) {
      case 0:  // below everything
        target = ips.front() * 0.5;
        break;
      case 1:  // above everything
        target = ips.back() * 1.5;
        break;
      case 2:  // exactly on a grid point (boundary of the >= predicate)
        target = ips[rng.index(size)];
        break;
      default:  // between two random levels
        target = rng.uniform(ips.front(), ips.back());
        break;
    }
    const auto fn = [&](std::size_t i) { return ips[i]; };
    EXPECT_EQ(min_index_meeting_target(start, size, target, fn),
              linear_scan(start, size, target, ips))
        << "trial " << trial << " start " << start << " target " << target;
  }
}

TEST(MinIndexMeetingTarget, MatchesLinearScanOnPlateauedCurves) {
  // Memory-bound applications plateau: consecutive VF levels deliver the
  // *same* IPS. The search must still return the first index of the
  // qualifying plateau, not an arbitrary element of it.
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t size = 2 + rng.index(10);
    std::vector<double> ips(size);
    double level = rng.uniform(1e7, 1e8);
    for (std::size_t i = 0; i < size; ++i) {
      // With probability ~1/2, repeat the previous level exactly.
      if (i > 0 && rng.bernoulli(0.5)) {
        ips[i] = ips[i - 1];
      } else {
        level += rng.uniform(0.0, 4e7);
        ips[i] = level;
      }
    }
    const std::size_t start = rng.index(size + 1);
    const double target =
        rng.bernoulli(0.5) ? ips[rng.index(size)]  // lands on a plateau
                           : rng.uniform(ips.front() * 0.9,
                                         ips.back() * 1.1);
    const auto fn = [&](std::size_t i) { return ips[i]; };
    EXPECT_EQ(min_index_meeting_target(start, size, target, fn),
              linear_scan(start, size, target, ips))
        << "trial " << trial << " start " << start << " target " << target;
  }
}

TEST(MinIndexMeetingTarget, DegenerateRanges) {
  const auto constant = [](std::size_t) { return 5.0; };
  // Empty range (start == size) is always "unattainable".
  EXPECT_EQ(min_index_meeting_target(0, 0, 1.0, constant), 0u);
  EXPECT_EQ(min_index_meeting_target(3, 3, 1.0, constant), 3u);
  // Single element.
  EXPECT_EQ(min_index_meeting_target(0, 1, 5.0, constant), 0u);
  EXPECT_EQ(min_index_meeting_target(0, 1, 5.1, constant), 1u);
}

}  // namespace
}  // namespace topil::il
