#include "il/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil::il {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  IlPipeline pipeline_{platform_, CoolingConfig::fan()};

  // A small-but-real configuration so the whole pipeline runs in seconds.
  PipelineConfig small_config() const {
    PipelineConfig config;
    config.num_scenarios = 8;
    config.seed = 13;
    config.oracle.qos_fractions = {0.3, 0.6};
    config.hidden = {24, 24};
    config.trainer.max_epochs = 15;
    config.trainer.patience = 15;
    config.max_examples = 4000;
    return config;
  }
};

TEST_F(PipelineTest, ScenarioGenerationIsDeterministicAndValid) {
  const auto pool = AppDatabase::instance().training_apps();
  const PipelineConfig config = small_config();
  const auto a = pipeline_.generate_scenarios(config, pool, pool);
  const auto b = pipeline_.generate_scenarios(config, pool, pool);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].aoi, b[i].aoi);
    EXPECT_EQ(a[i].background.size(), b[i].background.size());
    EXPECT_LE(a[i].background.size(), 6u);
    EXPECT_FALSE(a[i].free_cores(platform_).empty());
    EXPECT_TRUE(a[i].aoi->used_for_training);
  }
  // Scenarios differ from each other (not all identical).
  bool any_diff = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    any_diff |= (a[i].aoi != a[0].aoi) ||
                (a[i].background.size() != a[0].background.size());
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(PipelineTest, DatasetShapeAndScale) {
  const Dataset ds = pipeline_.build_dataset(small_config());
  EXPECT_GT(ds.size(), 100u);
  EXPECT_LE(ds.size(), 4000u);
  EXPECT_EQ(ds.feature_width(), 21u);
  EXPECT_EQ(ds.label_width(), 8u);
}

TEST_F(PipelineTest, DefaultScaleApproachesPaperExampleCount) {
  // The paper reports 19,831 examples from 100 scenarios. With default
  // settings our extractor produces a dataset of the same order. Use a
  // reduced scenario count and extrapolate to keep this test fast.
  PipelineConfig config;
  config.num_scenarios = 10;
  config.seed = 7;
  const Dataset ds = pipeline_.build_dataset(config);
  const double per_scenario = static_cast<double>(ds.size()) / 10.0;
  const double projected = per_scenario * 100.0;
  EXPECT_GT(projected, 5000.0);
  EXPECT_LT(projected, 120000.0);
}

TEST_F(PipelineTest, TrainingProducesUsefulModel) {
  const PipelineConfig config = small_config();
  const Dataset ds = pipeline_.build_dataset(config);
  const PipelineResult result = pipeline_.train_on(config, ds);
  EXPECT_EQ(result.num_examples, ds.size());
  // The trained model must beat the trivial all-zeros predictor, whose MSE
  // equals mean(label^2).
  double baseline = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (float l : ds.at(i).labels) {
      baseline += static_cast<double>(l) * l;
      ++n;
    }
  }
  baseline /= static_cast<double>(n);
  EXPECT_LT(result.train_result.best_validation_loss, baseline * 0.6);
}

TEST_F(PipelineTest, ModelEvaluationRecoversOracleDistances) {
  // Synthetic dataset where the "model" is the labels themselves: a
  // perfect predictor must score 100% within 1 degC with 0 excess.
  const PipelineConfig config = small_config();
  Dataset ds = pipeline_.build_dataset(config);

  // Perfect predictor: train a model to near-zero loss on a tiny subset
  // is unreliable; instead evaluate an oracle-like behaviour through the
  // public API by training on the full set and checking the metrics are
  // within meaningful ranges.
  const PipelineResult result = pipeline_.train_on(config, ds);
  const ModelEvalResult eval =
      evaluate_policy_model(result.model, ds, platform_);
  EXPECT_GT(eval.num_cases, 0u);
  EXPECT_GT(eval.within_one_degree_fraction(), 0.5);
  EXPECT_GE(eval.mean_excess_temp_c, 0.0);
  EXPECT_LT(eval.mean_excess_temp_c, 5.0);
  EXPECT_THROW(
      evaluate_policy_model(result.model, Dataset(21, 8), platform_),
      InvalidArgument);
}

}  // namespace
}  // namespace topil::il
