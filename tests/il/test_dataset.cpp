#include "il/dataset.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cstdio>
#include <fstream>

namespace topil::il {
namespace {

TrainingExample example(float seed) {
  TrainingExample ex;
  ex.features = {seed, seed + 1};
  ex.labels = {seed * 2};
  return ex;
}

TEST(Dataset, AddAndMaterialize) {
  Dataset ds(2, 1);
  ds.add(example(1));
  ds.add(example(2));
  EXPECT_EQ(ds.size(), 2u);
  const nn::Matrix x = ds.features_matrix();
  const nn::Matrix y = ds.labels_matrix();
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_EQ(y.cols(), 1u);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 4.0f);
}

TEST(Dataset, RejectsWrongWidths) {
  Dataset ds(2, 1);
  TrainingExample bad;
  bad.features = {1.0f};
  bad.labels = {1.0f};
  EXPECT_THROW(ds.add(bad), InvalidArgument);
  bad.features = {1.0f, 2.0f};
  bad.labels = {};
  EXPECT_THROW(ds.add(bad), InvalidArgument);
  EXPECT_THROW(Dataset(0, 1), InvalidArgument);
}

TEST(Dataset, EmptyMaterializeThrows) {
  Dataset ds(2, 1);
  EXPECT_TRUE(ds.empty());
  EXPECT_THROW(ds.features_matrix(), InvalidArgument);
  EXPECT_THROW(ds.at(0), InvalidArgument);
}

TEST(Dataset, ShufflePermutes) {
  Dataset ds(2, 1);
  for (int i = 0; i < 50; ++i) ds.add(example(static_cast<float>(i)));
  Rng rng(5);
  ds.shuffle(rng);
  bool moved = false;
  double sum = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    moved |= ds.at(i).features[0] != static_cast<float>(i);
    sum += ds.at(i).features[0];
  }
  EXPECT_TRUE(moved);
  EXPECT_DOUBLE_EQ(sum, 49.0 * 50.0 / 2.0);  // all elements preserved
}

TEST(Dataset, SampleCapsSize) {
  Dataset ds(2, 1);
  for (int i = 0; i < 30; ++i) ds.add(example(static_cast<float>(i)));
  Rng rng(2);
  const Dataset small = ds.sample(10, rng);
  EXPECT_EQ(small.size(), 10u);
  const Dataset same = ds.sample(100, rng);
  EXPECT_EQ(same.size(), 30u);
}

TEST(Dataset, AddAllMoves) {
  Dataset ds(2, 1);
  std::vector<TrainingExample> batch = {example(1), example(2), example(3)};
  ds.add_all(std::move(batch));
  EXPECT_EQ(ds.size(), 3u);
}

TEST(Dataset, SaveLoadRoundTrip) {
  Dataset ds(2, 1);
  for (int i = 0; i < 10; ++i) ds.add(example(static_cast<float>(i)));
  const std::string path = testing::TempDir() + "/dataset_test.bin";
  ds.save(path);
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), 10u);
  EXPECT_EQ(loaded.feature_width(), 2u);
  EXPECT_EQ(loaded.label_width(), 1u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded.at(i).features, ds.at(i).features);
    EXPECT_EQ(loaded.at(i).labels, ds.at(i).labels);
  }
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/dataset_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a dataset";
  }
  EXPECT_THROW(Dataset::load(path), InvalidArgument);
  std::remove(path.c_str());
  EXPECT_THROW(Dataset::load("/nonexistent/ds.bin"), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
