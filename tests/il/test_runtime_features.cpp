#include "il/runtime_features.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "sim/system_sim.hpp"

namespace topil::il {
namespace {

class RuntimeFeaturesTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  AppSpec linear_app() const {
    return make_single_phase_app("lin", 1e13, {2.0, 0.0, 0.9},
                                 {1.0, 0.0, 1.0}, 0.02, false);
  }
};

TEST_F(RuntimeFeaturesTest, OneInputPerApplication) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  const Pid a = sim.spawn(linear_app(), 5e8, 1);
  const Pid b = sim.spawn(linear_app(), 8e8, 6);
  sim.run_for(0.5);
  const auto inputs = collect_runtime_features(sim, {a, b});
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0].aoi_core, 1u);
  EXPECT_EQ(inputs[1].aoi_core, 6u);
  EXPECT_DOUBLE_EQ(inputs[0].aoi_qos_target, 5e8);
  EXPECT_DOUBLE_EQ(inputs[1].aoi_qos_target, 8e8);
}

TEST_F(RuntimeFeaturesTest, MeasuredRatesFlowIntoFeatures) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  sim.request_vf_level(kBigCluster, 2);  // 1.21 GHz, cpi 1 -> 1.21 GIPS
  const Pid pid = sim.spawn(linear_app(), 5e8, 5);
  sim.run_for(1.0);
  const auto inputs = collect_runtime_features(sim, {pid});
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_NEAR(inputs[0].aoi_ips, 1.21e9, 2e7);
  EXPECT_NEAR(inputs[0].aoi_l2d_rate, 1.21e9 * 0.02, 1e6);
  EXPECT_NEAR(inputs[0].cluster_freq_ghz[kBigCluster], 1.21, 1e-9);
}

TEST_F(RuntimeFeaturesTest, FreqWithoutAoiUsesOtherAppsOnly) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  sim.request_vf_level(kBigCluster, 8);  // peak: 2.362 GIPS measured
  // App A needs ~1.3 GHz on big; app B is trivial.
  const Pid demanding = sim.spawn(linear_app(), 1.3e9, 5);
  const Pid trivial = sim.spawn(linear_app(), 1e8, 6);
  sim.run_for(1.0);
  const auto inputs = collect_runtime_features(sim, {demanding, trivial});
  ASSERT_EQ(inputs.size(), 2u);
  // For the *trivial* app as AoI, the cluster requirement without it is
  // driven by the demanding app: ~1.364 GHz (level 3).
  EXPECT_NEAR(inputs[1].freq_without_aoi_ghz[kBigCluster], 1.364, 1e-6);
  // For the demanding app as AoI, only the trivial app remains: the
  // requirement collapses to the bottom level.
  EXPECT_NEAR(inputs[0].freq_without_aoi_ghz[kBigCluster], 0.682, 1e-6);
  // Nobody runs on LITTLE: its requirement is the minimum frequency.
  EXPECT_NEAR(inputs[0].freq_without_aoi_ghz[kLittleCluster], 0.509, 1e-6);
}

TEST_F(RuntimeFeaturesTest, UtilizationExcludesTheAoiItself) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  const Pid a = sim.spawn(linear_app(), 5e8, 2);
  const Pid b = sim.spawn(linear_app(), 5e8, 7);
  sim.run_for(0.3);
  const auto inputs = collect_runtime_features(sim, {a, b});
  // From a's point of view only core 7 is occupied; from b's only core 2.
  EXPECT_DOUBLE_EQ(inputs[0].core_utilization[2], 0.0);
  EXPECT_DOUBLE_EQ(inputs[0].core_utilization[7], 1.0);
  EXPECT_DOUBLE_EQ(inputs[1].core_utilization[2], 1.0);
  EXPECT_DOUBLE_EQ(inputs[1].core_utilization[7], 0.0);
}

TEST_F(RuntimeFeaturesTest, MatchesFeatureExtractorWidth) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  const Pid pid = sim.spawn(linear_app(), 5e8, 0);
  sim.run_for(0.2);
  const auto inputs = collect_runtime_features(sim, {pid});
  const FeatureExtractor extractor(platform_);
  const std::vector<float> row = extractor.extract(inputs[0]);
  EXPECT_EQ(row.size(), extractor.num_features());
}

}  // namespace
}  // namespace topil::il
