#include "il/online_oracle.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "sim/system_sim.hpp"

namespace topil::il {
namespace {

class OnlineOracleTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  OnlineOracle oracle_{platform_, CoolingConfig::fan()};

  OnlineOracle::AppState state(const char* app_name, double qos,
                               CoreId core) const {
    OnlineOracle::AppState s;
    s.app = &AppDatabase::instance().by_name(app_name);
    s.phase_index = 0;
    s.qos_target_ips = qos;
    s.core = core;
    return s;
  }
};

TEST_F(OnlineOracleTest, LabelsHaveOracleStructure) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const std::vector<OnlineOracle::AppState> apps = {
      state("adi", 0.3 * adi.peak_ips(platform_), 0),
      state("syr2k", 3e8, 4),
  };
  const std::vector<float> labels = oracle_.rate_mappings(apps, 0);
  ASSERT_EQ(labels.size(), 8u);
  EXPECT_FLOAT_EQ(labels[4], 0.0f);  // occupied by the other app
  // The best free mapping carries label 1.
  float best = -2.0f;
  for (CoreId c = 0; c < 8; ++c) best = std::max(best, labels[c]);
  EXPECT_NEAR(best, 1.0f, 1e-6);
  for (float l : labels) {
    EXPECT_TRUE(l == -1.0f || (l >= 0.0f && l <= 1.0f + 1e-6));
  }
}

TEST_F(OnlineOracleTest, AdiPrefersBigClusterWithLightBackground) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const std::vector<OnlineOracle::AppState> apps = {
      state("adi", 0.3 * adi.peak_ips(platform_), 0),
  };
  const std::vector<float> labels = oracle_.rate_mappings(apps, 0);
  float best_little = -2.0f;
  float best_big = -2.0f;
  for (CoreId c = 0; c < 4; ++c) best_little = std::max(best_little, labels[c]);
  for (CoreId c = 4; c < 8; ++c) best_big = std::max(best_big, labels[c]);
  EXPECT_GT(best_big, best_little);
  EXPECT_NEAR(best_big, 1.0f, 1e-6);
}

TEST_F(OnlineOracleTest, UnattainableTargetGetsMinusOne) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  // A target only the big cluster can serve.
  const double target = 0.9 * adi.peak_ips(platform_);
  const std::vector<OnlineOracle::AppState> apps = {
      state("adi", target, 6),
  };
  const std::vector<float> labels = oracle_.rate_mappings(apps, 0);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(labels[c], -1.0f) << "LITTLE core " << c;
  }
  EXPECT_GT(labels[6], 0.0f);
}

TEST_F(OnlineOracleTest, PhaseIndexMatters) {
  // dedup's phases differ strongly; the oracle must rate them differently.
  const AppSpec& dedup = AppDatabase::instance().by_name("dedup");
  auto s = state("dedup", 0.4 * dedup.peak_ips(platform_), 0);
  s.phase_index = 0;  // compute-ish "chunk"
  const auto labels_chunk =
      oracle_.rate_mappings({s}, 0);
  s.phase_index = 1;  // memory-bound "hash"
  const auto labels_hash = oracle_.rate_mappings({s}, 0);
  bool any_diff = false;
  for (CoreId c = 0; c < 8; ++c) {
    any_diff |= std::abs(labels_chunk[c] - labels_hash[c]) > 1e-4;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(OnlineOracleTest, SnapshotMirrorsRunningProcesses) {
  SystemSim sim(platform_, CoolingConfig::fan(), SimConfig{});
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const Pid pid = sim.spawn(adi, 4e8, 5);
  sim.run_for(0.5);
  const auto snap = OnlineOracle::snapshot(sim);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].core, 5u);
  EXPECT_DOUBLE_EQ(snap[0].qos_target_ips, 4e8);
  EXPECT_EQ(snap[0].app->name, "adi");
  (void)pid;
}

TEST_F(OnlineOracleTest, Validation) {
  EXPECT_THROW(OnlineOracle(platform_, CoolingConfig::fan(), 0.0),
               InvalidArgument);
  EXPECT_THROW(oracle_.rate_mappings({}, 0), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
