#include "il/il_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil::il {
namespace {

nn::Matrix ratings_matrix(std::initializer_list<std::initializer_list<float>>
                              rows) {
  const std::size_t r = rows.size();
  const std::size_t c = rows.begin()->size();
  nn::Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    std::size_t j = 0;
    for (float v : row) m.at(i, j++) = v;
    ++i;
  }
  return m;
}

std::vector<std::vector<bool>> all_allowed(std::size_t apps,
                                           std::size_t cores) {
  return std::vector<std::vector<bool>>(apps,
                                        std::vector<bool>(cores, true));
}

TEST(SelectBestMigration, PicksLargestImprovement) {
  // App 0 on core 0, app 1 on core 2.
  const nn::Matrix ratings = ratings_matrix({{0.2f, 0.9f, 0.1f, 0.0f},
                                             {0.3f, 0.2f, 0.5f, 0.95f}});
  const auto choice = select_best_migration(ratings, {0, 2},
                                            all_allowed(2, 4));
  ASSERT_TRUE(choice.has_value());
  // App0: best improvement 0.9-0.2=0.7; App1: 0.95-0.5=0.45.
  EXPECT_EQ(choice->app_index, 0u);
  EXPECT_EQ(choice->target_core, 1u);
  EXPECT_NEAR(choice->improvement, 0.7, 1e-6);
}

TEST(SelectBestMigration, RespectsMask) {
  const nn::Matrix ratings = ratings_matrix({{0.2f, 0.9f, 0.6f, 0.0f}});
  auto allowed = all_allowed(1, 4);
  allowed[0][1] = false;  // best core masked (occupied)
  const auto choice = select_best_migration(ratings, {0}, allowed);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->target_core, 2u);
}

TEST(SelectBestMigration, NoImprovementMeansNoMigration) {
  const nn::Matrix ratings = ratings_matrix({{0.9f, 0.5f, 0.2f, 0.1f}});
  EXPECT_FALSE(
      select_best_migration(ratings, {0}, all_allowed(1, 4)).has_value());
}

TEST(SelectBestMigration, MinImprovementThresholdIsHysteresis) {
  const nn::Matrix ratings = ratings_matrix({{0.90f, 0.93f, 0.0f, 0.0f}});
  EXPECT_TRUE(select_best_migration(ratings, {0}, all_allowed(1, 4), 0.0)
                  .has_value());
  EXPECT_FALSE(select_best_migration(ratings, {0}, all_allowed(1, 4), 0.05)
                   .has_value());
}

TEST(SelectBestMigration, ValidatesShapes) {
  const nn::Matrix ratings = ratings_matrix({{0.1f, 0.2f}});
  EXPECT_THROW(
      select_best_migration(ratings, {0, 1}, all_allowed(2, 2)),
      InvalidArgument);
  EXPECT_THROW(select_best_migration(ratings, {5}, all_allowed(1, 2)),
               InvalidArgument);
  EXPECT_THROW(select_best_migration(ratings, {0}, all_allowed(1, 3)),
               InvalidArgument);
}

TEST(IlPolicyModel, BatchBuildAndRate) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  nn::Topology topo;
  topo.inputs = 21;
  topo.hidden = {16};
  topo.outputs = 8;
  nn::Mlp net(topo);
  net.init(3);
  const IlPolicyModel model(std::move(net), platform);

  FeatureInput in;
  in.aoi_ips = 5e8;
  in.aoi_l2d_rate = 1e7;
  in.aoi_core = 2;
  in.aoi_qos_target = 3e8;
  in.cluster_freq_ghz = {1.0, 1.2};
  in.freq_without_aoi_ghz = {0.5, 0.7};
  in.core_utilization.assign(8, 0.0);

  const nn::Matrix batch = model.build_batch({in, in});
  EXPECT_EQ(batch.rows(), 2u);
  EXPECT_EQ(batch.cols(), 21u);
  const nn::Matrix ratings = model.rate({in, in});
  EXPECT_EQ(ratings.rows(), 2u);
  EXPECT_EQ(ratings.cols(), 8u);
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(ratings.at(0, c), ratings.at(1, c));
  }
  EXPECT_THROW(model.build_batch({}), InvalidArgument);
}

TEST(IlPolicyModel, RejectsMismatchedTopology) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  nn::Topology topo;
  topo.inputs = 5;  // wrong
  topo.outputs = 8;
  EXPECT_THROW(IlPolicyModel(nn::Mlp(topo), platform), InvalidArgument);
  topo.inputs = 21;
  topo.outputs = 4;  // wrong
  EXPECT_THROW(IlPolicyModel(nn::Mlp(topo), platform), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
