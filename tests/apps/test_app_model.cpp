#include "apps/app_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil {
namespace {

PhaseSpec make_phase(double cpi_l, double mem_l, double cpi_b, double mem_b,
                     double instructions = 1e9) {
  PhaseSpec p;
  p.name = "p";
  p.instructions = instructions;
  p.perf = {{cpi_l, mem_l, 0.9}, {cpi_b, mem_b, 1.0}};
  p.l2d_per_inst = 0.01;
  return p;
}

TEST(PhaseSpec, IpsMatchesTwoComponentModel) {
  const PhaseSpec p = make_phase(2.0, 0.5, 1.0, 0.1);
  // 1/IPS = cpi/f + mem  (ns): at 1 GHz LITTLE: 2.0 + 0.5 = 2.5 ns.
  EXPECT_NEAR(p.ips(kLittleCluster, 1.0), 1e9 / 2.5, 1.0);
  EXPECT_NEAR(p.ips(kBigCluster, 2.0), 1e9 / 0.6, 1.0);
}

TEST(PhaseSpec, IpsSaturatesForMemoryBoundPhases) {
  // Purely memory-bound: IPS nearly frequency-independent.
  const PhaseSpec p = make_phase(0.5, 5.0, 0.5, 5.0);
  const double low = p.ips(kBigCluster, 0.5);
  const double high = p.ips(kBigCluster, 2.5);
  EXPECT_LT(high / low, 1.20);
}

TEST(PhaseSpec, ComputeBoundScalesLinearly) {
  const PhaseSpec p = make_phase(2.0, 0.0, 1.0, 0.0);
  EXPECT_NEAR(p.ips(kBigCluster, 2.0) / p.ips(kBigCluster, 1.0), 2.0, 1e-9);
}

TEST(PhaseSpec, SeidelFitReproducesPaperTraceTable) {
  // The published trace table of the paper: seidel-2d at three LITTLE and
  // three big operating points. Our fitted parameters must reproduce it.
  PhaseSpec p = make_phase(3.56, 0.19, 2.59, 0.11);
  EXPECT_NEAR(p.ips(kLittleCluster, 0.509) / 1e6, 137.0, 4.0);
  EXPECT_NEAR(p.ips(kLittleCluster, 1.402) / 1e6, 366.0, 5.0);
  EXPECT_NEAR(p.ips(kLittleCluster, 1.844) / 1e6, 471.0, 5.0);
  EXPECT_NEAR(p.ips(kBigCluster, 0.682) / 1e6, 256.0, 4.0);
  EXPECT_NEAR(p.ips(kBigCluster, 1.210) / 1e6, 455.0, 12.0);
  EXPECT_NEAR(p.ips(kBigCluster, 1.556) / 1e6, 563.0, 8.0);
}

TEST(PhaseSpec, DurationIsInstructionsOverIps) {
  const PhaseSpec p = make_phase(1.0, 0.0, 1.0, 0.0, 2e9);
  EXPECT_NEAR(p.duration_s(kBigCluster, 1.0), 2.0, 1e-9);
}

TEST(PhaseSpec, ValidatesInput) {
  const PhaseSpec p = make_phase(1.0, 0.0, 1.0, 0.0);
  EXPECT_THROW(p.ips(2, 1.0), InvalidArgument);  // unknown cluster
  EXPECT_THROW(p.ips(kBigCluster, 0.0), InvalidArgument);
}

TEST(AppSpec, SinglePhaseHelpers) {
  const AppSpec app = make_single_phase_app(
      "x", 5e9, {2.0, 0.1, 0.9}, {1.0, 0.05, 1.0}, 0.01, true);
  EXPECT_EQ(app.num_phases(), 1u);
  EXPECT_DOUBLE_EQ(app.total_instructions(), 5e9);
  EXPECT_TRUE(app.used_for_training);
  EXPECT_NEAR(app.average_ips(kBigCluster, 1.0),
              app.phase(0).ips(kBigCluster, 1.0), 1e-6);
  EXPECT_THROW(app.phase(1), InvalidArgument);
  EXPECT_THROW(make_single_phase_app("bad", 0.0, {1, 0, 1}, {1, 0, 1}, 0.0,
                                     false),
               InvalidArgument);
}

TEST(AppSpec, AverageIpsIsHarmonicAcrossPhases) {
  AppSpec app;
  app.name = "two-phase";
  app.phases.push_back(make_phase(1.0, 0.0, 1.0, 0.0, 1e9));  // 1 GIPS @1GHz
  app.phases.push_back(make_phase(4.0, 0.0, 4.0, 0.0, 1e9));  // 0.25 GIPS
  // 2e9 instructions in 1 + 4 = 5 s -> 0.4 GIPS, not the arithmetic 0.625.
  EXPECT_NEAR(app.average_ips(kBigCluster, 1.0), 0.4e9, 1e3);
}

TEST(AppSpec, PeakIpsPicksFasterCluster) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec big_friendly = make_single_phase_app(
      "bf", 1e9, {3.0, 0.1, 0.9}, {1.0, 0.05, 1.0}, 0.01, false);
  EXPECT_NEAR(big_friendly.peak_ips(platform),
              big_friendly.average_ips(kBigCluster, 2.362), 1.0);
}

TEST(AppSpec, MinLevelForIpsFindsLowestSufficientLevel) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec app = make_single_phase_app(
      "m", 1e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  // On big with cpi=1: IPS = f GHz * 1e9. Target 1.3 GIPS -> 1.364 GHz.
  const std::size_t level =
      app.min_level_for_ips(platform, kBigCluster, 1.3e9);
  EXPECT_NEAR(platform.cluster(kBigCluster).vf.at(level).freq_ghz, 1.364,
              1e-9);
  // Unattainable target: sentinel num_levels().
  EXPECT_EQ(app.min_level_for_ips(platform, kLittleCluster, 5e9),
            platform.cluster(kLittleCluster).vf.num_levels());
}

}  // namespace
}  // namespace topil
