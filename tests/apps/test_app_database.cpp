#include "apps/app_database.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil {
namespace {

const PlatformSpec& platform() {
  static const PlatformSpec p = PlatformSpec::hikey970();
  return p;
}

TEST(AppDatabase, ContainsThePaperBenchmarks) {
  const AppDatabase& db = AppDatabase::instance();
  for (const char* name :
       {"adi", "fdtd-2d", "floyd-warshall", "gramschmidt", "heat-3d",
        "jacobi-2d", "seidel-2d", "syr2k", "blackscholes", "bodytrack",
        "canneal", "dedup", "facesim", "ferret", "fluidanimate",
        "swaptions", "streamcluster", "x264", "freqmine", "raytrace",
        "vips"}) {
    EXPECT_TRUE(db.contains(name)) << name;
  }
  EXPECT_EQ(db.all().size(), 21u);
  EXPECT_FALSE(db.contains("doom"));
  EXPECT_THROW(db.by_name("doom"), InvalidArgument);
}

TEST(AppDatabase, TrainingSplitMatchesPaper) {
  const AppDatabase& db = AppDatabase::instance();
  // 7 Polybench kernels for training; jacobi-2d and all PARSEC unseen.
  EXPECT_EQ(db.training_apps().size(), 7u);
  EXPECT_EQ(db.unseen_apps().size(), 14u);
  EXPECT_FALSE(db.by_name("jacobi-2d").used_for_training);
  EXPECT_TRUE(db.by_name("seidel-2d").used_for_training);
  for (const AppSpec* app : db.training_apps()) {
    EXPECT_EQ(app->num_phases(), 1u)
        << app->name << ": oracle traces need constant-QoS benchmarks";
  }
}

TEST(AppDatabase, ParsecAppsHavePhases) {
  const AppDatabase& db = AppDatabase::instance();
  EXPECT_GE(db.by_name("dedup").num_phases(), 3u);
  EXPECT_GE(db.by_name("bodytrack").num_phases(), 2u);
  EXPECT_GE(db.by_name("ferret").num_phases(), 3u);
}

TEST(AppDatabase, AdiIsStronglyBigPreferring) {
  // The motivational example: a 30 %-of-big-peak QoS target needs the top
  // LITTLE level but only the lowest big level.
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const double target = 0.3 * adi.peak_ips(platform());
  const std::size_t l_level =
      adi.min_level_for_ips(platform(), kLittleCluster, target);
  const std::size_t b_level =
      adi.min_level_for_ips(platform(), kBigCluster, target);
  const auto& lvf = platform().cluster(kLittleCluster).vf;
  ASSERT_LT(l_level, lvf.num_levels());
  EXPECT_GE(lvf.at(l_level).freq_ghz, 1.7);  // ~1.8 GHz on LITTLE
  EXPECT_EQ(b_level, 0u);                    // lowest big level suffices
}

TEST(AppDatabase, SeidelNeedsSimilarMidLevelsOnBothClusters) {
  const AppSpec& seidel = AppDatabase::instance().by_name("seidel-2d");
  const double target = 0.3 * seidel.peak_ips(platform());
  const std::size_t l_level =
      seidel.min_level_for_ips(platform(), kLittleCluster, target);
  const std::size_t b_level =
      seidel.min_level_for_ips(platform(), kBigCluster, target);
  const double f_l = platform().cluster(kLittleCluster).vf.at(l_level).freq_ghz;
  const double f_b = platform().cluster(kBigCluster).vf.at(b_level).freq_ghz;
  // Paper: ~1.2 GHz LITTLE vs ~1.0 GHz big — close, mildly LITTLE-friendly.
  EXPECT_GT(f_l / f_b, 0.8);
  EXPECT_LT(f_l / f_b, 1.6);
  EXPECT_GE(f_b, platform().cluster(kBigCluster).vf.min_freq());
}

TEST(AppDatabase, CannealIsFrequencyInsensitive) {
  const AppSpec& canneal = AppDatabase::instance().by_name("canneal");
  const double low = canneal.average_ips(
      kBigCluster, platform().cluster(kBigCluster).vf.min_freq());
  const double high = canneal.average_ips(
      kBigCluster, platform().cluster(kBigCluster).vf.max_freq());
  // Memory-bound: less than 2x speedup for a 3.5x frequency increase.
  EXPECT_LT(high / low, 2.0);
}

// Parameterized sanity sweep over every application in the database.
class AppDbEveryApp : public ::testing::TestWithParam<std::string> {};

TEST_P(AppDbEveryApp, WellFormedCharacteristics) {
  const AppSpec& app = AppDatabase::instance().by_name(GetParam());
  EXPECT_GT(app.total_instructions(), 0.0);
  for (const PhaseSpec& phase : app.phases) {
    ASSERT_EQ(phase.perf.size(), 2u) << phase.name;
    EXPECT_GT(phase.instructions, 0.0);
    EXPECT_GE(phase.l2d_per_inst, 0.0);
    for (const ClusterPerf& perf : phase.perf) {
      EXPECT_GT(perf.cpi, 0.0);
      EXPECT_GE(perf.mem_ns_per_inst, 0.0);
      EXPECT_GT(perf.activity, 0.0);
      EXPECT_LE(perf.activity, 1.5);
    }
    // Out-of-order big cores are never slower per instruction.
    EXPECT_LE(phase.perf[kBigCluster].cpi, phase.perf[kLittleCluster].cpi);
    EXPECT_LE(phase.perf[kBigCluster].mem_ns_per_inst,
              phase.perf[kLittleCluster].mem_ns_per_inst);
  }
}

TEST_P(AppDbEveryApp, BigClusterFasterAtEqualFrequency) {
  const AppSpec& app = AppDatabase::instance().by_name(GetParam());
  EXPECT_GT(app.average_ips(kBigCluster, 1.2),
            app.average_ips(kLittleCluster, 1.2) * 0.999);
}

TEST_P(AppDbEveryApp, RunsForMinutesNotSecondsAtTypicalOperatingPoint) {
  const AppSpec& app = AppDatabase::instance().by_name(GetParam());
  const double ips = app.average_ips(kBigCluster, 1.21);
  const double duration = app.total_instructions() / ips;
  EXPECT_GT(duration, 10.0) << "too short for a migration epoch study";
  EXPECT_LT(duration, 600.0) << "too long for experiment turnaround";
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppDbEveryApp,
    ::testing::Values("adi", "fdtd-2d", "floyd-warshall", "gramschmidt",
                      "heat-3d", "jacobi-2d", "seidel-2d", "syr2k",
                      "blackscholes", "bodytrack", "canneal", "dedup",
                      "facesim", "ferret", "fluidanimate", "swaptions",
                      "streamcluster", "x264", "freqmine", "raytrace",
                      "vips"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace topil
