#include "rl/state.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace topil::rl {
namespace {

class StateTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  StateQuantizer quantizer_{platform_};

  StateQuantizer::Observation base() const {
    StateQuantizer::Observation o;
    o.core = 0;
    o.qos_met = true;
    o.measured_ips = 1e9;
    o.l2d_rate = 1e6;  // 0.001 per inst: compute-bound
    o.vf_levels = {0, 0};
    return o;
  }
};

TEST_F(StateTest, PaperScaleTableSize) {
  // 8 cores x 2 QoS x 2 L2D x 3 x 3 terciles = 288 states; with 8 actions
  // the Q-table holds 2,304 entries — the paper's reported size.
  EXPECT_EQ(quantizer_.num_states(), 288u);
  EXPECT_EQ(quantizer_.num_actions(), 8u);
  EXPECT_EQ(quantizer_.num_states() * quantizer_.num_actions(), 2304u);
}

TEST_F(StateTest, StatesWithinRange) {
  auto o = base();
  for (CoreId core = 0; core < 8; ++core) {
    o.core = core;
    EXPECT_LT(quantizer_.quantize(o), quantizer_.num_states());
  }
}

TEST_F(StateTest, DistinctFactorsYieldDistinctStates) {
  std::set<std::size_t> states;
  auto o = base();
  for (CoreId core : {0u, 7u}) {
    for (bool qos : {false, true}) {
      for (double l2d : {1e6, 1e8}) {
        for (std::size_t level : {0u, 4u, 8u}) {
          o.core = core;
          o.qos_met = qos;
          o.l2d_rate = l2d;
          o.vf_levels = {level, level};
          states.insert(quantizer_.quantize(o));
        }
      }
    }
  }
  EXPECT_EQ(states.size(), 2u * 2 * 2 * 3);
}

TEST_F(StateTest, L2dIntensityIsRelativeToIps) {
  auto hi = base();
  hi.measured_ips = 1e8;
  hi.l2d_rate = 1e7;  // 0.1 per inst: memory-intensive
  auto lo = base();
  lo.measured_ips = 1e9;
  lo.l2d_rate = 1e7;  // 0.01 per inst: below the 0.02 threshold
  EXPECT_NE(quantizer_.quantize(hi), quantizer_.quantize(lo));
}

TEST_F(StateTest, ZeroIpsCountsAsComputeBound) {
  auto o = base();
  o.measured_ips = 0.0;
  o.l2d_rate = 0.0;
  EXPECT_NO_THROW(quantizer_.quantize(o));
}

TEST_F(StateTest, TercilesPartitionLevels) {
  const std::size_t n = platform_.cluster(kBigCluster).vf.num_levels();
  std::set<std::size_t> seen;
  std::size_t prev = 0;
  for (std::size_t level = 0; level < n; ++level) {
    const std::size_t t = quantizer_.level_tercile(kBigCluster, level);
    EXPECT_LT(t, 3u);
    EXPECT_GE(t, prev);  // monotone
    prev = t;
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_THROW(quantizer_.level_tercile(kBigCluster, n), InvalidArgument);
}

TEST_F(StateTest, ValidatesObservation) {
  auto o = base();
  o.core = 8;
  EXPECT_THROW(quantizer_.quantize(o), InvalidArgument);
  o = base();
  o.vf_levels = {0};
  EXPECT_THROW(quantizer_.quantize(o), InvalidArgument);
}

}  // namespace
}  // namespace topil::rl
