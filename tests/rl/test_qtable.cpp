#include "rl/qtable.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace topil::rl {
namespace {

TEST(QTable, InitializedWithConstantValues) {
  QTable table(4, 3, 25.0);
  EXPECT_EQ(table.num_states(), 4u);
  EXPECT_EQ(table.num_actions(), 3u);
  EXPECT_EQ(table.num_entries(), 12u);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(table.q(s, a), 25.0);
    }
  }
}

TEST(QTable, SetAndGet) {
  QTable table(2, 2, 0.0);
  table.set_q(1, 0, 3.5);
  EXPECT_DOUBLE_EQ(table.q(1, 0), 3.5);
  EXPECT_DOUBLE_EQ(table.q(0, 0), 0.0);
  EXPECT_THROW(table.q(2, 0), InvalidArgument);
  EXPECT_THROW(table.q(0, 2), InvalidArgument);
}

TEST(QTable, GreedyActionRespectsMask) {
  QTable table(1, 4, 0.0);
  table.set_q(0, 0, 1.0);
  table.set_q(0, 1, 5.0);
  table.set_q(0, 2, 3.0);
  EXPECT_EQ(table.greedy_action(0, {true, true, true, true}), 1u);
  EXPECT_EQ(table.greedy_action(0, {true, false, true, true}), 2u);
  EXPECT_DOUBLE_EQ(table.max_q(0, {true, false, true, true}), 3.0);
  EXPECT_THROW(table.greedy_action(0, {false, false, false, false}),
               InvalidArgument);
  EXPECT_THROW(table.greedy_action(0, {true}), InvalidArgument);
}

TEST(QTable, UpdateFollowsBellmanRule) {
  QTable table(2, 2, 0.0);
  table.set_q(1, 0, 10.0);  // max_a' Q(s'=1, a') = 10
  table.set_q(0, 0, 2.0);
  // Q(0,0) += alpha * (r + gamma*10 - 2) = 2 + 0.5*(4 + 0.8*10 - 2) = 7.
  table.update(0, 0, 4.0, 1, {true, true}, 0.5, 0.8);
  EXPECT_DOUBLE_EQ(table.q(0, 0), 7.0);
}

TEST(QTable, TerminalUpdateHasNoBootstrap) {
  QTable table(1, 1, 5.0);
  table.update_terminal(0, 0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(table.q(0, 0), 5.0 + 0.5 * (1.0 - 5.0));
}

TEST(QTable, RepeatedUpdatesConvergeToFixedPoint) {
  QTable table(1, 1, 0.0);
  // Self-loop with reward 1: Q* = r / (1 - gamma) = 5 for gamma 0.8.
  for (int i = 0; i < 2000; ++i) {
    table.update(0, 0, 1.0, 0, {true}, 0.1, 0.8);
  }
  EXPECT_NEAR(table.q(0, 0), 5.0, 0.01);
}

TEST(QTable, SaveLoadRoundTrip) {
  QTable table(3, 2, 0.0);
  table.set_q(2, 1, -7.5);
  table.set_q(0, 0, 42.0);
  const std::string path = testing::TempDir() + "/qtable_test.bin";
  table.save(path);
  const QTable loaded = QTable::load(path);
  EXPECT_EQ(loaded.num_states(), 3u);
  EXPECT_EQ(loaded.num_actions(), 2u);
  EXPECT_DOUBLE_EQ(loaded.q(2, 1), -7.5);
  EXPECT_DOUBLE_EQ(loaded.q(0, 0), 42.0);
  std::remove(path.c_str());
  EXPECT_THROW(QTable::load("/nonexistent/q.bin"), InvalidArgument);
}

TEST(QTable, ValidatesDimensions) {
  EXPECT_THROW(QTable(0, 2), InvalidArgument);
  EXPECT_THROW(QTable(2, 0), InvalidArgument);
}

}  // namespace
}  // namespace topil::rl
