// Deterministic-seed episode rollouts for the TOP-RL stack plus exact
// numerical regressions of the tabular Q-learning update.

#include <gtest/gtest.h>

#include <vector>

#include "apps/app_model.hpp"
#include "core/experiment.hpp"
#include "governors/toprl_governor.hpp"
#include "rl/qtable.hpp"
#include "workloads/workload.hpp"

namespace topil {
namespace {

// --- QTable::update numerical regressions (hand-computed) ---

TEST(QTableRegression, UpdateMatchesHandComputedValue) {
  rl::QTable table(4, 3, 25.0);
  table.set_q(3, 0, 10.0);
  table.set_q(3, 1, 40.0);
  table.set_q(3, 2, 30.0);
  const std::vector<bool> all = {true, true, true};

  // Q(1,2) += alpha * (r + gamma * max_a' Q(3,a') - Q(1,2))
  //         = 25 + 0.5 * (10 + 0.9 * 40 - 25) = 35.5
  table.update(1, 2, 10.0, 3, all, 0.5, 0.9);
  EXPECT_DOUBLE_EQ(table.q(1, 2), 35.5);

  // Chained update from the just-written value:
  // 35.5 + 0.1 * (-2 + 0.9 * 40 - 35.5) = 35.5 + 0.1 * -1.5 = 35.35
  table.update(1, 2, -2.0, 3, all, 0.1, 0.9);
  EXPECT_DOUBLE_EQ(table.q(1, 2), 35.35);

  // The bootstrap maximum must respect the allowed-action mask:
  // masked max is Q(3,0) = 10, so
  // 25 + 0.5 * (0 + 0.9 * 10 - 25) = 17.0
  const std::vector<bool> only_first = {true, false, false};
  table.update(2, 1, 0.0, 3, only_first, 0.5, 0.9);
  EXPECT_DOUBLE_EQ(table.q(2, 1), 17.0);
}

TEST(QTableRegression, TerminalUpdateHasNoBootstrapTerm) {
  rl::QTable table(2, 2, 25.0);
  // 25 + 0.25 * (4 - 25) = 19.75
  table.update_terminal(0, 1, 4.0, 0.25);
  EXPECT_DOUBLE_EQ(table.q(0, 1), 19.75);
  // Repeating with alpha = 1 pins Q exactly to the reward.
  table.update_terminal(0, 1, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(table.q(0, 1), 4.0);
}

// --- Deterministic episode rollout ---

class RlRolloutTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  Workload small_workload() {
    // Short synthetic apps (fractions of a second each at peak) so a full
    // learning episode takes milliseconds of wall clock.
    static const AppSpec app_a = make_single_phase_app(
        "adi", 2e9, {2.0, 0.1, 0.9}, {1.0, 0.05, 1.0}, 0.01, false);
    static const AppSpec app_b = make_single_phase_app(
        "canneal", 1.5e9, {3.0, 0.4, 0.8}, {1.8, 0.3, 0.9}, 0.02, false);
    std::vector<WorkloadItem> items;
    WorkloadItem first;
    first.app_name = app_a.name;
    first.arrival_time = 0.0;
    first.qos_target_ips = 4e8;
    first.app = &app_a;
    WorkloadItem second;
    second.app_name = app_b.name;
    second.arrival_time = 0.5;
    second.qos_target_ips = 2e8;
    second.app = &app_b;
    items.push_back(first);
    items.push_back(second);
    return Workload(std::move(items));
  }

  ExperimentResult rollout(std::uint64_t seed, rl::QTable* table_out) {
    TopRlGovernor::Config config;
    config.learning_enabled = true;
    config.seed = seed;
    TopRlGovernor governor(platform_, config);
    ExperimentConfig experiment;
    experiment.max_duration_s = 60.0;
    experiment.sim.seed = 9;
    const ExperimentResult result =
        run_experiment(platform_, governor, small_workload(), experiment);
    if (table_out != nullptr) *table_out = governor.table();
    return result;
  }
};

TEST_F(RlRolloutTest, SameSeedReproducesEpisodeBitForBit) {
  rl::QTable table_a(1, 1);
  rl::QTable table_b(1, 1);
  const ExperimentResult a = rollout(11, &table_a);
  const ExperimentResult b = rollout(11, &table_b);

  ASSERT_EQ(a.apps_completed, a.apps_total);
  ASSERT_EQ(a.completed.size(), b.completed.size());
  for (std::size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].pid, b.completed[i].pid);
    EXPECT_EQ(a.completed[i].finish_time, b.completed[i].finish_time);
    EXPECT_EQ(a.completed[i].average_ips, b.completed[i].average_ips);
    EXPECT_EQ(a.completed[i].below_target_fraction,
              b.completed[i].below_target_fraction);
  }
  EXPECT_EQ(a.avg_temp_c, b.avg_temp_c);
  EXPECT_EQ(a.peak_temp_c, b.peak_temp_c);
  EXPECT_EQ(a.duration_s, b.duration_s);

  // The learned Q-tables are identical entry by entry: same exploration
  // stream, same experiences, same updates.
  ASSERT_EQ(table_a.num_states(), table_b.num_states());
  ASSERT_EQ(table_a.num_actions(), table_b.num_actions());
  bool learned_something = false;
  for (std::size_t s = 0; s < table_a.num_states(); ++s) {
    for (std::size_t act = 0; act < table_a.num_actions(); ++act) {
      EXPECT_EQ(table_a.q(s, act), table_b.q(s, act))
          << "state " << s << " action " << act;
      learned_something |= (table_a.q(s, act) != 25.0);
    }
  }
  EXPECT_TRUE(learned_something);
}

}  // namespace
}  // namespace topil
