#include "rl/agent.hpp"

#include <gtest/gtest.h>

namespace topil::rl {
namespace {

TEST(Reward, EquationSevenShape) {
  const RlParams params;
  // All QoS met: r = 80 - T.
  EXPECT_DOUBLE_EQ(compute_reward(params, 45.0, false), 35.0);
  EXPECT_DOUBLE_EQ(compute_reward(params, 80.0, false), 0.0);
  // Any violation: the tuned -200 penalty.
  EXPECT_DOUBLE_EQ(compute_reward(params, 45.0, true), -200.0);
}

TEST(Reward, CoolerIsAlwaysBetterWhenFeasible) {
  const RlParams params;
  EXPECT_GT(compute_reward(params, 40.0, false),
            compute_reward(params, 50.0, false));
  // And any feasible temperature beats a violation.
  EXPECT_GT(compute_reward(params, 95.0, false),
            compute_reward(params, 30.0, true));
}

TEST(EpsilonGreedy, ZeroEpsilonIsGreedy) {
  QTable table(1, 3, 0.0);
  table.set_q(0, 2, 9.0);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(epsilon_greedy(table, 0, {true, true, true}, 0.0, rng), 2u);
  }
}

TEST(EpsilonGreedy, OneEpsilonIsUniformOverAllowed) {
  QTable table(1, 3, 0.0);
  table.set_q(0, 2, 9.0);
  Rng rng(2);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    counts[epsilon_greedy(table, 0, {true, false, true}, 1.0, rng)]++;
  }
  EXPECT_EQ(counts[1], 0);  // masked
  EXPECT_GT(counts[0], 1200);
  EXPECT_GT(counts[2], 1200);
}

TEST(EpsilonGreedy, ExplorationRateApproximatelyEpsilon) {
  QTable table(1, 4, 0.0);
  table.set_q(0, 0, 10.0);  // greedy action is 0
  Rng rng(3);
  int non_greedy = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (epsilon_greedy(table, 0, {true, true, true, true}, 0.1, rng) != 0) {
      ++non_greedy;
    }
  }
  // Exploration picks uniformly among 4 actions: 3/4 of eps leaves greedy.
  EXPECT_NEAR(static_cast<double>(non_greedy) / n, 0.075, 0.015);
}

TEST(EpsilonGreedy, ValidatesArguments) {
  QTable table(1, 2, 0.0);
  Rng rng(4);
  EXPECT_THROW(epsilon_greedy(table, 0, {true, true}, 1.5, rng),
               InvalidArgument);
  EXPECT_THROW(epsilon_greedy(table, 0, {true}, 0.1, rng), InvalidArgument);
  EXPECT_THROW(epsilon_greedy(table, 0, {false, false}, 1.0, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace topil::rl
