#include "rl/mediator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace topil::rl {
namespace {

class MediatorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  StateQuantizer quantizer_{platform_};

  RlMigrationController::AppObservation obs(Pid pid, std::size_t state,
                                            CoreId core) const {
    RlMigrationController::AppObservation o;
    o.pid = pid;
    o.state = state;
    o.current_core = core;
    o.allowed_actions.assign(8, true);
    return o;
  }
};

TEST_F(MediatorTest, MediatorExecutesHighestQProposal) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  // Agent in state 5 strongly prefers core 3; state 9 mildly prefers 1.
  table.set_q(5, 3, 50.0);
  table.set_q(9, 1, 10.0);
  RlMigrationController ctl(table, quantizer_, RlParams{}, Rng(1),
                            /*learning=*/false);
  const auto decision =
      ctl.epoch({obs(100, 9, 0), obs(200, 5, 7)}, /*reward=*/0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->pid, 200u);
  EXPECT_EQ(decision->target_core, 3u);
}

TEST_F(MediatorTest, OnlyOneActionPerEpoch) {
  QTable table(quantizer_.num_states(), 8, 1.0);
  RlMigrationController ctl(table, quantizer_, RlParams{}, Rng(2), false);
  const auto decision = ctl.epoch({obs(1, 0, 0), obs(2, 1, 1)}, 0.0);
  ASSERT_TRUE(decision.has_value());
  // Exactly one (pid, core) pair comes back per epoch by construction;
  // empty observation sets produce no action.
  EXPECT_FALSE(ctl.epoch({}, 0.0).has_value());
}

TEST_F(MediatorTest, RewardCreditedOnlyToSelectedAgent) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  table.set_q(5, 3, 50.0);
  RlParams params;
  params.alpha = 0.5;
  params.gamma = 0.0;  // isolate the immediate reward
  RlMigrationController ctl(table, quantizer_, params, Rng(3),
                            /*learning=*/true);
  // Epoch 1: agent (pid 200, state 5) selected, executes action 3.
  ctl.epoch({obs(100, 9, 0), obs(200, 5, 7)}, 0.0);
  // Epoch 2: reward 20 arrives; only Q(5,3) may change.
  const double q93_before = table.q(9, 3);
  ctl.epoch({obs(100, 9, 0), obs(200, 5, 3)}, 20.0);
  EXPECT_DOUBLE_EQ(table.q(5, 3), 50.0 + 0.5 * (20.0 - 50.0));
  EXPECT_DOUBLE_EQ(table.q(9, 3), q93_before);
}

TEST_F(MediatorTest, FinishedAgentGetsTerminalUpdate) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  table.set_q(5, 3, 50.0);
  RlParams params;
  params.alpha = 0.5;
  RlMigrationController ctl(table, quantizer_, params, Rng(4), true);
  ctl.epoch({obs(200, 5, 7)}, 0.0);
  // pid 200 finished before the next epoch: terminal update with reward 10.
  ctl.epoch({obs(300, 9, 0)}, 10.0);
  EXPECT_DOUBLE_EQ(table.q(5, 3), 50.0 + 0.5 * (10.0 - 50.0));
}

TEST_F(MediatorTest, LearningDisabledFreezesTable) {
  QTable table(quantizer_.num_states(), 8, 7.0);
  RlMigrationController ctl(table, quantizer_, RlParams{}, Rng(5), false);
  ctl.epoch({obs(1, 0, 0)}, 0.0);
  ctl.epoch({obs(1, 0, 0)}, -200.0);
  for (std::size_t s = 0; s < table.num_states(); ++s) {
    for (std::size_t a = 0; a < 8; ++a) {
      ASSERT_DOUBLE_EQ(table.q(s, a), 7.0);
    }
  }
}

TEST_F(MediatorTest, ResetEpisodeDropsPendingCredit) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  table.set_q(5, 3, 50.0);
  RlParams params;
  params.alpha = 0.5;
  RlMigrationController ctl(table, quantizer_, params, Rng(6), true);
  ctl.epoch({obs(200, 5, 7)}, 0.0);
  ctl.reset_episode();
  ctl.epoch({obs(200, 5, 3)}, -200.0);  // no pending: no update happens
  EXPECT_DOUBLE_EQ(table.q(5, 3), 50.0);
}

TEST_F(MediatorTest, QLearningImprovesPolicyOnToyProblem) {
  // Toy MDP embedded in the migration interface: action 2 always yields a
  // high reward, others low. After training the greedy policy picks 2.
  QTable table(quantizer_.num_states(), 8, 0.0);
  RlParams params;
  params.epsilon = 0.3;
  params.alpha = 0.2;
  RlMigrationController ctl(table, quantizer_, params, Rng(7), true);
  std::size_t state = 0;
  std::size_t last_action = 0;
  for (int i = 0; i < 600; ++i) {
    const double reward = (last_action == 2) ? 10.0 : -1.0;
    const auto decision = ctl.epoch({obs(1, state, 0)}, reward);
    ASSERT_TRUE(decision.has_value());
    last_action = decision->target_core;
  }
  EXPECT_EQ(table.greedy_action(0, std::vector<bool>(8, true)), 2u);
}

TEST_F(MediatorTest, DoubleQUpdatesSplitAcrossTables) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  RlParams params;
  params.double_q = true;
  params.alpha = 0.5;
  params.epsilon = 0.0;
  RlMigrationController ctl(table, quantizer_, params, Rng(12), true);
  // Run many reward-credit cycles; both estimators must receive updates.
  for (int i = 0; i < 60; ++i) {
    ctl.epoch({obs(1, 0, 0)}, 4.0);
  }
  bool a_changed = false;
  bool b_changed = false;
  for (std::size_t a = 0; a < 8; ++a) {
    a_changed |= ctl.table().q(0, a) != 0.0;
    b_changed |= ctl.table_b().q(0, a) != 0.0;
  }
  EXPECT_TRUE(a_changed);
  EXPECT_TRUE(b_changed);
}

TEST_F(MediatorTest, DoubleQConvergesOnToyProblem) {
  QTable table(quantizer_.num_states(), 8, 0.0);
  RlParams params;
  params.double_q = true;
  params.epsilon = 0.3;
  params.alpha = 0.2;
  RlMigrationController ctl(table, quantizer_, params, Rng(13), true);
  std::size_t last_action = 0;
  for (int i = 0; i < 800; ++i) {
    const double reward = (last_action == 2) ? 10.0 : -1.0;
    const auto decision = ctl.epoch({obs(1, 0, 0)}, reward);
    ASSERT_TRUE(decision.has_value());
    last_action = decision->target_core;
  }
  // Combined greedy action is 2 on both estimators.
  EXPECT_EQ(ctl.table().greedy_action(0, std::vector<bool>(8, true)), 2u);
  EXPECT_EQ(ctl.table_b().greedy_action(0, std::vector<bool>(8, true)), 2u);
}

TEST_F(MediatorTest, DoubleQReducesOverestimationUnderNoise) {
  // Bandit with noisy equal-mean arms: vanilla Q's max operator inflates
  // the best-looking Q value more than double Q does.
  auto run = [&](bool double_q, std::uint64_t seed) {
    QTable table(quantizer_.num_states(), 8, 0.0);
    RlParams params;
    params.double_q = double_q;
    params.epsilon = 1.0;  // pure exploration
    params.alpha = 0.2;
    params.gamma = 0.8;
    RlMigrationController ctl(table, quantizer_, params, Rng(seed), true);
    Rng noise(seed ^ 0xabcdu);
    for (int i = 0; i < 3000; ++i) {
      ctl.epoch({obs(1, 0, 0)}, noise.gaussian(0.0, 3.0));
    }
    // True value of every action is 0; report the max combined estimate.
    double max_q = -1e9;
    for (std::size_t a = 0; a < 8; ++a) {
      const double q = double_q
                           ? 0.5 * (ctl.table().q(0, a) +
                                    ctl.table_b().q(0, a))
                           : ctl.table().q(0, a);
      max_q = std::max(max_q, q);
    }
    return max_q;
  };
  RunningStats vanilla;
  RunningStats doubled;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    vanilla.add(run(false, seed));
    doubled.add(run(true, seed));
  }
  EXPECT_LT(doubled.mean(), vanilla.mean());
}

TEST_F(MediatorTest, ValidatesConstruction) {
  QTable wrong(10, 8, 0.0);
  EXPECT_THROW(RlMigrationController(wrong, quantizer_, RlParams{}, Rng(1),
                                     true),
               InvalidArgument);
}

}  // namespace
}  // namespace topil::rl
