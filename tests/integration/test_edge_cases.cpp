// Assorted edge-case and fault-injection coverage across module
// boundaries: invalid actuation, DTM disabled, overload placement,
// governor overhead attribution, and mid-run governor resets.

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"
#include "governors/powersave.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

class EdgeCases : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);
};

TEST_F(EdgeCases, InvalidActuationThrows) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  EXPECT_THROW(sim.spawn(app_, 1e8, 8), InvalidArgument);
  EXPECT_THROW(sim.spawn(app_, 0.0, 0), InvalidArgument);
  EXPECT_THROW(sim.request_vf_level(2, 0), InvalidArgument);
  EXPECT_THROW(sim.request_vf_level(kBigCluster, 99), InvalidArgument);
  EXPECT_THROW(sim.charge_overhead("x", -1.0), InvalidArgument);
  EXPECT_THROW(sim.charge_overhead("x", 0.001, 99), InvalidArgument);
  EXPECT_THROW(sim.npu_busy_for(-0.1), InvalidArgument);
  EXPECT_THROW(sim.core_utilization(8), InvalidArgument);
  EXPECT_THROW(sim.process(12345), InvalidArgument);
}

TEST_F(EdgeCases, DtmDisabledNeverClamps) {
  SimConfig config = quiet();
  config.dtm_enabled = false;
  SystemSim sim(platform_, CoolingConfig::no_fan(), config);
  const std::size_t top = platform_.cluster(kBigCluster).vf.num_levels() - 1;
  sim.request_vf_level(kBigCluster, top);
  sim.request_vf_level(kLittleCluster,
                       platform_.cluster(kLittleCluster).vf.num_levels() - 1);
  for (CoreId c = 0; c < 8; ++c) sim.spawn(app_, 1e8, c);
  sim.run_for(400.0);
  // Without DTM the chip is allowed to run hotter than the trip point...
  EXPECT_GT(sim.thermal().max_core_temp_c(), 85.0);
  // ...and the effective level never drops.
  EXPECT_EQ(sim.vf_level(kBigCluster), top);
  EXPECT_EQ(sim.metrics().throttle_events(), 0u);
}

TEST_F(EdgeCases, DefaultPlacementSpreadsUnderOverload) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  // Fill every core twice via the default least-loaded placement.
  class Dummy : public Governor {
   public:
    std::string name() const override { return "dummy"; }
    void tick(SystemSim&) override {}
  } governor;
  for (int i = 0; i < 16; ++i) {
    const CoreId core = governor.place(sim, app_, 1e8);
    sim.spawn(app_, 1e8, core);
  }
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(sim.pids_on_core(c).size(), 2u) << "core " << c;
  }
}

TEST_F(EdgeCases, OverheadChargedToNonDefaultCore) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  const Pid victim = sim.spawn(app_, 1e8, 5);
  const Pid bystander = sim.spawn(app_, 1e8, 6);
  for (int i = 0; i < 100; ++i) {
    sim.charge_overhead("gov", 0.005, 5);  // half of core 5 per tick
    sim.step();
  }
  EXPECT_NEAR(sim.process(victim).instructions_retired() /
                  sim.process(bystander).instructions_retired(),
              0.5, 0.03);
}

TEST_F(EdgeCases, GovernorResetMidRunIsClean) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  auto governor = make_gts_ondemand();
  governor->reset(sim);
  sim.spawn(app_, 1e8, governor->place(sim, app_, 1e8));
  for (int i = 0; i < 200; ++i) {
    governor->tick(sim);
    sim.step();
  }
  // Resetting mid-run must not throw, and the governor keeps working.
  governor->reset(sim);
  for (int i = 0; i < 200; ++i) {
    governor->tick(sim);
    sim.step();
  }
  EXPECT_EQ(sim.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
}

TEST_F(EdgeCases, ZeroNoiseSensorIsExactAtSamplePoints) {
  SimConfig config = quiet();
  SystemSim sim(platform_, CoolingConfig::fan(), config);
  sim.spawn(app_, 1e8, 4);
  sim.run_for(5.0);
  EXPECT_NEAR(sim.sensor_temp_c(), sim.thermal().max_core_temp_c(), 0.2);
}

TEST_F(EdgeCases, ProcessesFinishingSimultaneouslyAllRetire) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  const AppSpec quick = make_single_phase_app(
      "q", 1e9, {2.0, 0.0, 0.9}, {1.0, 0.0, 1.0}, 0.01, false);
  sim.request_vf_level(kBigCluster, 4);
  for (CoreId c = 4; c < 8; ++c) sim.spawn(quick, 1e7, c);
  sim.run_for(5.0);
  EXPECT_EQ(sim.num_running(), 0u);
  EXPECT_EQ(sim.metrics().completed().size(), 4u);
  for (const auto& rec : sim.metrics().completed()) {
    EXPECT_FALSE(rec.qos_violated);
  }
}

// Every application can attain a 30% target on the big cluster, and the
// required level is monotone in the target fraction.
class QosAttainability : public ::testing::TestWithParam<std::string> {};

TEST_P(QosAttainability, MonotoneAndAttainable) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  const AppSpec& app = AppDatabase::instance().by_name(GetParam());
  const double peak = app.peak_ips(platform);
  std::size_t prev = 0;
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const std::size_t level =
        app.min_level_for_ips(platform, kBigCluster, fraction * peak);
    EXPECT_GE(level, prev);
    prev = level;
    if (fraction <= 0.3) {
      EXPECT_LT(level, platform.cluster(kBigCluster).vf.num_levels())
          << "30% target must be attainable on big";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, QosAttainability,
    ::testing::Values("adi", "fdtd-2d", "floyd-warshall", "gramschmidt",
                      "heat-3d", "jacobi-2d", "seidel-2d", "syr2k",
                      "blackscholes", "bodytrack", "canneal", "dedup",
                      "facesim", "ferret", "fluidanimate", "swaptions",
                      "streamcluster", "x264", "freqmine", "raytrace",
                      "vips"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace topil
