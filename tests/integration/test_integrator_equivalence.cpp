// Equivalence of the exponential propagator against the Heun reference:
// for every application in the database, a 60 s governed rollout must
// produce the same governor decisions and core temperatures within a
// tight tolerance. This is the acceptance gate for switching the bench
// binaries to the exponential integrator by default.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "apps/app_database.hpp"
#include "governors/powersave.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

const PlatformSpec& platform() {
  static const PlatformSpec p = PlatformSpec::hikey970();
  return p;
}

SimConfig make_config(ThermalIntegrator integrator) {
  SimConfig config;
  config.integrator = integrator;
  config.seed = 7;
  return config;
}

class IntegratorEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntegratorEquivalence, SixtySecondRolloutMatchesHeun) {
  const AppSpec& app = AppDatabase::instance().all().at(GetParam());

  SystemSim heun(platform(), CoolingConfig::fan(),
                 make_config(ThermalIntegrator::Heun));
  SystemSim expo(platform(), CoolingConfig::fan(),
                 make_config(ThermalIntegrator::Exponential));
  const auto gov_heun = make_gts_ondemand();
  const auto gov_expo = make_gts_ondemand();
  gov_heun->reset(heun);
  gov_expo->reset(expo);

  const double qos_target =
      0.6 * app.average_ips(kBigCluster,
                            platform().cluster(kBigCluster).vf.max_freq());
  const CoreId core_h = gov_heun->place(heun, app, qos_target);
  const CoreId core_e = gov_expo->place(expo, app, qos_target);
  ASSERT_EQ(core_h, core_e);
  const Pid pid_h = heun.spawn(app, qos_target, core_h);
  const Pid pid_e = expo.spawn(app, qos_target, core_e);

  const std::size_t num_cores = platform().num_cores();
  double max_temp_diff = 0.0;
  while (heun.now() < 60.0) {
    gov_heun->tick(heun);
    gov_expo->tick(expo);
    heun.step();
    expo.step();

    // Identical control decisions tick for tick.
    for (ClusterId cluster = 0; cluster < platform().num_clusters();
         ++cluster) {
      ASSERT_EQ(heun.vf_level(cluster), expo.vf_level(cluster))
          << app.name << " t=" << heun.now() << " cluster " << cluster;
    }
    ASSERT_EQ(heun.is_running(pid_h), expo.is_running(pid_e))
        << app.name << " t=" << heun.now();
    if (heun.is_running(pid_h)) {
      ASSERT_EQ(heun.process(pid_h).core(), expo.process(pid_e).core())
          << app.name << " t=" << heun.now();
    }

    for (CoreId core = 0; core < num_cores; ++core) {
      max_temp_diff = std::max(
          max_temp_diff, std::abs(heun.thermal().core_temp_c(core) -
                                  expo.thermal().core_temp_c(core)));
    }
  }

  // The integrators agree to well under the sensor quantization step —
  // but are not bit-identical (the exponential path really ran).
  EXPECT_LT(max_temp_diff, 0.05) << app.name;
  EXPECT_GT(max_temp_diff, 0.0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, IntegratorEquivalence,
    ::testing::Range<std::size_t>(0, AppDatabase::instance().all().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = AppDatabase::instance().all().at(info.param).name;
      std::replace_if(
          name.begin(), name.end(),
          [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); },
          '_');
      return name;
    });

}  // namespace
}  // namespace topil
