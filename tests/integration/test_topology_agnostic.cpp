// Topology-agnostic acceptance tests: the whole IL stack — features,
// design-time oracle extraction, DAgger (expert + policy rollouts through
// the fleet engine), the TOP-IL governor, and batched lockstep stepping —
// must work unchanged on platforms that look nothing like the 4+4
// big.LITTLE reference: a 2+4+4 three-tier SoC and a 16-core 4x4 grid
// part. Shapes come from TopologySpec, apps are adapted to arbitrary tier
// counts with blend_perf, and every rollout runs under the runtime
// invariant checker.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "apps/app_database.hpp"
#include "core/dagger.hpp"
#include "governors/topil_governor.hpp"
#include "il/oracle.hpp"
#include "il/pipeline.hpp"
#include "platform/topology.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/fleet/batch_runner.hpp"
#include "validate/digest_monitor.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

/// Expected NN input width: qos + l2d + per-core one-hot + target +
/// per-cluster frequency ratio + per-core utilization.
std::size_t expected_features(const PlatformSpec& platform) {
  return 3 + 2 * platform.num_cores() + platform.num_clusters();
}

/// Database apps characterize the two reference clusters; re-rank their
/// perf rows onto `platform`'s tiers via the tier blends — the same
/// adaptation the scenario layer applies when materializing a spec.
AppSpec adapt_app(const AppSpec& base, const std::vector<double>& blends) {
  AppSpec app = base;
  for (PhaseSpec& phase : app.phases) {
    std::vector<ClusterPerf> rows;
    rows.reserve(blends.size());
    for (double b : blends) rows.push_back(blend_perf(phase.perf, b));
    phase.perf = std::move(rows);
  }
  return app;
}

std::vector<double> tier_blends(const TopologySpec& topology) {
  std::vector<double> blends;
  for (const TierSpec& tier : topology.tiers) {
    blends.push_back(tier.perf_blend);
  }
  return blends;
}

struct AdaptedPool {
  std::vector<AppSpec> storage;
  std::vector<const AppSpec*> pointers;
};

AdaptedPool adapt_training_pool(const TopologySpec& topology,
                                std::size_t max_apps) {
  const std::vector<double> blends = tier_blends(topology);
  AdaptedPool pool;
  for (const AppSpec* app : AppDatabase::instance().training_apps()) {
    if (pool.storage.size() >= max_apps) break;
    pool.storage.push_back(adapt_app(*app, blends));
  }
  for (const AppSpec& app : pool.storage) pool.pointers.push_back(&app);
  return pool;
}

// --- property sweep: dims + oracle feasibility over the shape space -----

struct Shape {
  std::size_t tiers = 0;
  std::size_t cores_per_tier = 0;
};

TopologySpec shape_topology(const Shape& shape) {
  TopologySpec topology;
  for (std::size_t i = 0; i < shape.tiers; ++i) {
    TierSpec tier;
    tier.name = "tier" + std::to_string(i);
    tier.perf_blend = shape.tiers == 1
                          ? 1.0
                          : static_cast<double>(i) /
                                static_cast<double>(shape.tiers - 1);
    tier.num_cores = shape.cores_per_tier;
    topology.tiers.push_back(tier);
  }
  return topology;
}

void check_oracle_on_topology(const TopologySpec& topology,
                              const std::string& label) {
  const PlatformSpec soc = topology.build();
  const il::FeatureExtractor features(soc);
  EXPECT_EQ(features.num_features(), expected_features(soc)) << label;
  EXPECT_EQ(features.num_outputs(), soc.num_cores()) << label;

  const AdaptedPool pool = adapt_training_pool(topology, 2);
  ASSERT_GE(pool.pointers.size(), 2u) << label;

  il::Scenario scenario;
  scenario.aoi = pool.pointers[0];
  scenario.background[0] = pool.pointers[1];  // slowest tier's first core
  il::TraceCollector::Config config;
  config.integrator = ThermalIntegrator::Exponential;
  config.batched_solves = true;
  const il::TraceCollector collector(soc, CoolingConfig::fan(), config);
  const il::ScenarioTraces traces = collector.collect(scenario);
  EXPECT_EQ(traces.free_cores().size(), soc.num_cores() - 1) << label;

  const il::OracleExtractor extractor(soc);
  const auto examples = extractor.extract(traces);
  ASSERT_FALSE(examples.empty()) << label;
  bool saw_optimal = false;
  for (const auto& ex : examples) {
    ASSERT_EQ(ex.features.size(), features.num_features()) << label;
    ASSERT_EQ(ex.labels.size(), soc.num_cores()) << label;
    // The occupied core can never be a feasible mapping.
    EXPECT_FLOAT_EQ(ex.labels[0], 0.0f) << label;
    float best = 0.0f;
    for (float l : ex.labels) {
      // 0 = occupied, -1 = free but QoS-infeasible, else the soft label.
      EXPECT_TRUE(l == -1.0f || (l >= 0.0f && l <= 1.0f + 1e-6f)) << label;
      best = std::max(best, l);
    }
    saw_optimal |= best >= 1.0f - 1e-5f;
  }
  // Oracle feasibility: some example must witness its optimal mapping
  // (soft label exp(0) = 1 at the coolest feasible core).
  EXPECT_TRUE(saw_optimal) << label;
}

TEST(TopologyAgnostic, OracleDimsAndFeasibilityAcrossShapes) {
  const Shape shapes[] = {{1, 2}, {2, 1}, {3, 2}, {4, 1}};
  for (const Shape& shape : shapes) {
    check_oracle_on_topology(shape_topology(shape),
                             std::to_string(shape.tiers) + "x" +
                                 std::to_string(shape.cores_per_tier));
  }
  // One many-core grid floorplan: same contract on the 4-neighbour
  // lateral-coupling thermal layout.
  check_oracle_on_topology(TopologySpec::many_core_grid(2, 2, 2), "grid2x2");
}

TEST(TopologyAgnostic, DatasetBuildIsJobsIndependent) {
  const TopologySpec topology = TopologySpec::three_tier();
  const PlatformSpec soc = topology.build();
  const AdaptedPool pool = adapt_training_pool(topology, 3);

  const il::IlPipeline pipeline(soc, CoolingConfig::fan());
  il::PipelineConfig config;
  config.num_scenarios = 4;
  config.max_background_apps = 2;
  config.traces.integrator = ThermalIntegrator::Exponential;
  config.traces.batched_solves = true;

  config.jobs = 1;
  const il::Dataset serial =
      pipeline.build_dataset(config, pool.pointers, pool.pointers);
  config.jobs = 3;
  const il::Dataset threaded =
      pipeline.build_dataset(config, pool.pointers, pool.pointers);

  ASSERT_GT(serial.size(), 0u);
  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_EQ(serial.feature_width(), expected_features(soc));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.at(i).features, threaded.at(i).features) << i;
    EXPECT_EQ(serial.at(i).labels, threaded.at(i).labels) << i;
  }
}

// --- end-to-end: DAgger + validated rollout + fleet bit-identity --------

il::DaggerConfig small_dagger(const std::vector<const AppSpec*>& pool) {
  il::DaggerConfig config;
  config.iterations = 2;  // expert rollouts, then TOP-IL policy rollouts
  config.rollouts_per_iteration = 2;
  config.rollout_duration_s = 40.0;
  config.workload_apps = 3;
  config.arrival_rate_per_s = 0.2;
  config.integrator = ThermalIntegrator::Exponential;
  config.training.hidden = {16};
  config.training.trainer.max_epochs = 6;
  config.training.trainer.patience = 6;
  config.fleet_batch = 2;  // rollouts run as fleet-engine lockstep lanes
  config.app_pool = pool;
  config.seed = 13;
  return config;
}

/// Validated TOP-IL rollout: runs the trained policy on a mixed workload
/// with the runtime invariant checker attached (a violation throws).
ExperimentResult validated_rollout(const PlatformSpec& soc,
                                   const nn::Mlp& model,
                                   const std::vector<const AppSpec*>& pool,
                                   std::uint64_t seed) {
  const WorkloadGenerator generator(soc);
  WorkloadGenerator::MixedConfig mixed;
  mixed.num_apps = 4;
  mixed.arrival_rate_per_s = 0.2;
  mixed.seed = seed;
  const Workload workload = generator.mixed(mixed, pool);

  TopIlGovernor governor(il::IlPolicyModel(model, soc));
  ExperimentConfig config;
  config.sim.integrator = ThermalIntegrator::Exponential;
  config.sim.validate = true;
  config.max_duration_s = 60.0;
  return run_experiment(soc, governor, workload, config);
}

/// The same rollout through fleet::run_experiments must be bit-identical
/// to the scalar path (digest + tick count), batched thermal and all.
void expect_fleet_matches_scalar(const PlatformSpec& soc,
                                 const nn::Mlp& model,
                                 const std::vector<const AppSpec*>& pool,
                                 std::uint64_t seed) {
  const WorkloadGenerator generator(soc);
  WorkloadGenerator::MixedConfig mixed;
  mixed.num_apps = 4;
  mixed.arrival_rate_per_s = 0.2;

  constexpr std::size_t kLanes = 2;
  std::vector<Workload> workloads;
  for (std::size_t i = 0; i < kLanes; ++i) {
    mixed.seed = seed + i;
    workloads.push_back(generator.mixed(mixed, pool));
  }

  ExperimentConfig config;
  config.sim.integrator = ThermalIntegrator::Exponential;
  config.max_duration_s = 60.0;

  struct Outcome {
    std::uint64_t digest = 0;
    std::uint64_t ticks = 0;
  };
  std::vector<Outcome> reference(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    validate::DigestMonitor monitor;
    ExperimentConfig c = config;
    c.monitor = &monitor;
    TopIlGovernor governor(il::IlPolicyModel(model, soc));
    run_experiment(soc, governor, workloads[i], c);
    reference[i].digest = monitor.digest();
    reference[i].ticks = monitor.ticks();
  }

  std::deque<validate::DigestMonitor> monitors(kLanes);
  std::vector<fleet::FleetJob> jobs(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    jobs[i].platform = &soc;
    jobs[i].workload = &workloads[i];
    jobs[i].config = config;
    jobs[i].config.monitor = &monitors[i];
    jobs[i].make_governor = [&model,
                             &soc](npu::InferenceAggregator* aggregator) {
      TopIlGovernor::Config c;
      c.aggregator = aggregator;
      return std::make_unique<TopIlGovernor>(il::IlPolicyModel(model, soc),
                                             c);
    };
  }
  fleet::FleetOptions options;
  options.batch = kLanes;
  fleet::run_experiments(jobs, options);
  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(monitors[i].digest(), reference[i].digest) << "lane " << i;
    EXPECT_EQ(monitors[i].ticks(), reference[i].ticks) << "lane " << i;
  }
}

TEST(TopologyAgnostic, ThreeTierDaggerTrainsAndRollsOut) {
  const TopologySpec topology = TopologySpec::three_tier();
  const PlatformSpec soc = topology.build();
  ASSERT_EQ(soc.num_cores(), 10u);
  const AdaptedPool pool = adapt_training_pool(topology, 4);

  const il::DaggerTrainer trainer(soc, CoolingConfig::fan());
  const il::DaggerResult result = trainer.run(small_dagger(pool.pointers));
  ASSERT_EQ(result.iterations.size(), 2u);
  EXPECT_GT(result.iterations[0].new_examples, 0u);
  EXPECT_GT(result.iterations[1].total_examples,
            result.iterations[0].total_examples);
  EXPECT_EQ(result.model.topology().inputs, expected_features(soc));
  EXPECT_EQ(result.model.topology().outputs, soc.num_cores());

  const ExperimentResult rollout =
      validated_rollout(soc, result.model, pool.pointers, 21);
  ASSERT_NE(rollout.validation, nullptr);
  EXPECT_TRUE(rollout.validation->clean());
  EXPECT_GT(rollout.validation->ticks_checked, 0u);

  expect_fleet_matches_scalar(soc, result.model, pool.pointers, 31);
}

TEST(TopologyAgnostic, SixteenCoreGridDaggerTrainsAndRollsOut) {
  const TopologySpec topology = TopologySpec::many_core_grid(4, 4, 2);
  const PlatformSpec soc = topology.build();
  ASSERT_EQ(soc.num_cores(), 16u);
  ASSERT_TRUE(soc.grid().enabled());
  const AdaptedPool pool = adapt_training_pool(topology, 4);

  il::DaggerConfig config = small_dagger(pool.pointers);
  config.rollout_duration_s = 30.0;
  const il::DaggerTrainer trainer(soc, CoolingConfig::fan());
  const il::DaggerResult result = trainer.run(config);
  ASSERT_EQ(result.iterations.size(), 2u);
  EXPECT_GT(result.iterations.back().total_examples, 0u);
  EXPECT_EQ(result.model.topology().inputs, expected_features(soc));
  EXPECT_EQ(result.model.topology().outputs, 16u);

  const ExperimentResult rollout =
      validated_rollout(soc, result.model, pool.pointers, 22);
  ASSERT_NE(rollout.validation, nullptr);
  EXPECT_TRUE(rollout.validation->clean());

  expect_fleet_matches_scalar(soc, result.model, pool.pointers, 32);
}

// Scenario layer ties in: a non-big.LITTLE spec with a grid placement must
// materialize, run, and produce jobs-independent fleet digests.
TEST(TopologyAgnostic, GridScenarioFleetDigestsAreJobsIndependent) {
  scenario::ScenarioSpec spec;
  spec.tiers = {TierSpec{"little", 0.0, 2}, TierSpec{"mid", 0.5, 2},
                TierSpec{"big", 1.0, 2}};
  spec.grid = GridPlacement{2, 3};
  spec.governor = "gts-ondemand";
  spec.max_duration_s = 60.0;
  spec.apps = {{"swaptions", 0.4, 0.0, 0.01}, {"adi", 0.6, 5.0, 0.01}};

  auto run_with_jobs = [&](std::size_t jobs_count) {
    std::vector<scenario::MaterializedScenario> ms;
    std::vector<scenario::ScenarioSpec> specs(2, spec);
    specs[1].sim_seed = spec.sim_seed + 1;
    for (const auto& s : specs) ms.push_back(scenario::materialize(s));

    std::deque<validate::DigestMonitor> monitors(specs.size());
    std::vector<fleet::FleetJob> jobs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      jobs[i].platform = &ms[i].platform;
      jobs[i].workload = &ms[i].workload;
      jobs[i].config.cooling = ms[i].cooling;
      jobs[i].config.sim = ms[i].sim;
      jobs[i].config.sim.integrator = ThermalIntegrator::Exponential;
      jobs[i].config.max_duration_s = ms[i].max_duration_s;
      jobs[i].config.monitor = &monitors[i];
      jobs[i].make_governor = [&specs, &ms, i](npu::InferenceAggregator*) {
        return scenario::make_scenario_governor(
            specs[i].governor, ms[i].platform, specs[i].sim_seed);
      };
    }
    fleet::FleetOptions options;
    options.batch = 2;
    options.jobs = jobs_count;
    fleet::run_experiments(jobs, options);
    std::vector<std::uint64_t> digests;
    for (auto& monitor : monitors) digests.push_back(monitor.digest());
    return digests;
  };

  const std::vector<std::uint64_t> serial = run_with_jobs(1);
  const std::vector<std::uint64_t> threaded = run_with_jobs(2);
  EXPECT_EQ(serial, threaded);
  EXPECT_NE(serial[0], serial[1]);  // distinct sensor seeds diverge
}

}  // namespace
}  // namespace topil
