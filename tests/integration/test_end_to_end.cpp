#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "governors/powersave.hpp"
#include "governors/topil_governor.hpp"
#include "il/pipeline.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

// End-to-end: train a (reduced-size) IL policy through the full pipeline,
// deploy it as the TOP-IL governor, and compare against the Linux
// baselines on a mixed workload. This checks the paper's headline ordering
// at integration level; the full-scale numbers live in the benchmarks.
class EndToEndTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  static const nn::Mlp& trained_model() {
    static const nn::Mlp model = [] {
      const PlatformSpec platform = PlatformSpec::hikey970();
      il::IlPipeline pipeline(platform, CoolingConfig::fan());
      il::PipelineConfig config;
      config.num_scenarios = 24;
      config.seed = 4;
      config.hidden = {32, 32};
      config.trainer.max_epochs = 30;
      config.trainer.patience = 10;
      config.trainer.seed = 1;
      config.max_examples = 6000;
      return pipeline.train(config).model;
    }();
    return model;
  }

  ExperimentResult run_with(std::unique_ptr<Governor> governor,
                            const Workload& workload) const {
    ExperimentConfig config;
    config.max_duration_s = 900.0;
    config.sim.seed = 77;
    return run_experiment(platform_, *governor, workload, config);
  }

  Workload mixed_workload() const {
    WorkloadGenerator generator(platform_);
    WorkloadGenerator::MixedConfig config;
    config.num_apps = 10;
    config.arrival_rate_per_s = 0.08;
    config.seed = 21;
    return generator.mixed(config, AppDatabase::instance().mixed_pool());
  }
};

TEST_F(EndToEndTest, TopIlCoolerThanGtsOndemand) {
  const Workload w = mixed_workload();
  auto topil = std::make_unique<TopIlGovernor>(
      il::IlPolicyModel(trained_model(), platform_));
  const ExperimentResult il_result = run_with(std::move(topil), w);
  const ExperimentResult ondemand_result =
      run_with(make_gts_ondemand(), w);

  EXPECT_LT(il_result.avg_temp_c, ondemand_result.avg_temp_c - 1.0);
  // And not at catastrophic QoS cost.
  EXPECT_LE(il_result.qos_violation_fraction(), 0.4);
}

TEST_F(EndToEndTest, TopIlViolatesFarLessThanPowersave) {
  const Workload w = mixed_workload();
  auto topil = std::make_unique<TopIlGovernor>(
      il::IlPolicyModel(trained_model(), platform_));
  const ExperimentResult il_result = run_with(std::move(topil), w);
  const ExperimentResult powersave_result =
      run_with(make_gts_powersave(), w);

  EXPECT_LT(il_result.qos_violation_fraction(),
            powersave_result.qos_violation_fraction());
  EXPECT_GT(powersave_result.qos_violation_fraction(), 0.5);
}

TEST_F(EndToEndTest, GeneralizesToDifferentCooling) {
  // The model was trained with fan cooling; running without a fan must
  // still complete and stay plausible (the paper's generalization claim).
  const Workload w = mixed_workload();
  auto topil = std::make_unique<TopIlGovernor>(
      il::IlPolicyModel(trained_model(), platform_));
  ExperimentConfig config;
  config.cooling = CoolingConfig::no_fan();
  config.max_duration_s = 900.0;
  const ExperimentResult result =
      run_experiment(platform_, *topil, w, config);
  EXPECT_EQ(result.apps_completed, w.size());
  EXPECT_LE(result.qos_violation_fraction(), 0.5);
}

TEST_F(EndToEndTest, SingleUnseenAppMeetsQosAtLowTemperature) {
  WorkloadGenerator generator(platform_);
  const Workload w =
      generator.single(AppDatabase::instance().by_name("fluidanimate"));
  auto topil = std::make_unique<TopIlGovernor>(
      il::IlPolicyModel(trained_model(), platform_));
  const ExperimentResult il_result = run_with(std::move(topil), w);
  const ExperimentResult ondemand_result =
      run_with(make_gts_ondemand(), w);
  EXPECT_EQ(il_result.qos_violations, 0u);
  EXPECT_LT(il_result.avg_temp_c, ondemand_result.avg_temp_c);
}

}  // namespace
}  // namespace topil
