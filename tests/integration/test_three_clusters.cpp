// The paper states its solution "is compatible with any number of
// clusters". This integration test exercises the whole stack — platform,
// floorplan/thermal, features (width grows with clusters and cores),
// trace collection, oracle extraction, training, runtime selection, and
// the DVFS control loop — on a synthetic 3-cluster SoC (2 efficiency + 4
// mid + 2 prime cores).

#include <gtest/gtest.h>

#include "governors/dvfs_control.hpp"
#include "il/oracle.hpp"
#include "il/pipeline.hpp"
#include "sim/system_sim.hpp"

namespace topil {
namespace {

PlatformSpec three_cluster_soc() {
  VFTable eff({{0.6, 0.65}, {1.0, 0.72}, {1.4, 0.80}});
  PowerCoefficients eff_p;
  eff_p.dyn_coeff_w = 0.18;
  eff_p.uncore_coeff_w = 0.06;
  eff_p.leak_g0_w_per_v = 0.03;
  eff_p.leak_g1_w_per_v_k = 0.001;

  VFTable mid({{0.8, 0.70}, {1.4, 0.80}, {2.0, 0.92}});
  PowerCoefficients mid_p;
  mid_p.dyn_coeff_w = 0.45;
  mid_p.uncore_coeff_w = 0.15;
  mid_p.leak_g0_w_per_v = 0.08;
  mid_p.leak_g1_w_per_v_k = 0.002;

  VFTable prime({{1.0, 0.75}, {1.8, 0.88}, {2.8, 1.05}});
  PowerCoefficients prime_p;
  prime_p.dyn_coeff_w = 0.85;
  prime_p.uncore_coeff_w = 0.25;
  prime_p.leak_g0_w_per_v = 0.14;
  prime_p.leak_g1_w_per_v_k = 0.004;

  std::vector<ClusterSpec> clusters;
  clusters.push_back({"eff", 2, std::move(eff), eff_p});
  clusters.push_back({"mid", 4, std::move(mid), mid_p});
  clusters.push_back({"prime", 2, std::move(prime), prime_p});
  return PlatformSpec(std::move(clusters), NpuSpec{});
}

// Synthetic apps with per-cluster characteristics for all three clusters.
AppSpec tri_app(const char* name, double cpi_e, double cpi_m, double cpi_p,
                double mem) {
  PhaseSpec phase;
  phase.name = "main";
  phase.instructions = 1e12;
  phase.perf = {{cpi_e, mem * 1.4, 0.8},
                {cpi_m, mem, 0.9},
                {cpi_p, mem * 0.7, 1.0}};
  phase.l2d_per_inst = 0.01;
  AppSpec app;
  app.name = name;
  app.phases.push_back(phase);
  app.used_for_training = true;
  return app;
}

TEST(ThreeClusters, FeatureWidthScalesWithPlatform) {
  const PlatformSpec soc = three_cluster_soc();
  const il::FeatureExtractor extractor(soc);
  // qos + l2d + 8 one-hot + target + 3 freq ratios + 8 utils = 22.
  EXPECT_EQ(soc.num_cores(), 8u);
  EXPECT_EQ(extractor.num_features(), 22u);
  EXPECT_EQ(extractor.num_outputs(), 8u);
}

TEST(ThreeClusters, TraceCollectionAndOracleWork) {
  const PlatformSpec soc = three_cluster_soc();
  const AppSpec aoi = tri_app("aoi", 3.0, 1.8, 1.0, 0.2);
  const AppSpec bg = tri_app("bg", 2.5, 1.6, 1.1, 0.3);

  il::Scenario scenario;
  scenario.aoi = &aoi;
  scenario.background[0] = &bg;   // one eff core busy
  scenario.background[3] = &bg;   // one mid core busy
  const il::TraceCollector collector(soc, CoolingConfig::fan());
  const il::ScenarioTraces traces = collector.collect(scenario);
  EXPECT_EQ(traces.free_cores().size(), 6u);

  const il::OracleExtractor extractor(soc);
  const auto examples = extractor.extract(traces);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_EQ(ex.features.size(), 22u);
    EXPECT_EQ(ex.labels.size(), 8u);
    EXPECT_FLOAT_EQ(ex.labels[0], 0.0f);
    EXPECT_FLOAT_EQ(ex.labels[3], 0.0f);
  }
}

TEST(ThreeClusters, EndToEndPipelineTrainsAndEvaluates) {
  const PlatformSpec soc = three_cluster_soc();
  static const AppSpec apps[] = {
      tri_app("compute", 2.8, 1.6, 0.9, 0.05),
      tri_app("memory", 2.0, 1.7, 1.5, 1.2),
      tri_app("balanced", 2.4, 1.6, 1.2, 0.4),
  };
  std::vector<const AppSpec*> pool = {&apps[0], &apps[1], &apps[2]};

  const il::IlPipeline pipeline(soc, CoolingConfig::fan());
  il::PipelineConfig config;
  config.num_scenarios = 10;
  config.hidden = {24, 24};
  config.trainer.max_epochs = 12;
  config.trainer.patience = 12;
  config.max_examples = 4000;
  const il::Dataset dataset =
      pipeline.build_dataset(config, pool, pool);
  ASSERT_GT(dataset.size(), 100u);
  EXPECT_EQ(dataset.feature_width(), 22u);

  const il::PipelineResult result = pipeline.train_on(config, dataset);
  const il::ModelEvalResult eval =
      il::evaluate_policy_model(result.model, dataset, soc);
  EXPECT_GT(eval.num_cases, 0u);
  EXPECT_GT(eval.within_one_degree_fraction(), 0.4);
}

TEST(ThreeClusters, DvfsControlLoopManagesThreeClusters) {
  const PlatformSpec soc = three_cluster_soc();
  static const AppSpec app = tri_app("a", 2.0, 1.5, 1.0, 0.0);
  SimConfig config;
  config.sensor.noise_stddev_c = 0.0;
  SystemSim sim(soc, CoolingConfig::fan(), config);
  DvfsControlLoop loop;
  loop.reset(sim);
  // prime core (id 6): cpi 1 -> needs 1.8 GHz (level 1) for 1.5 GIPS.
  sim.spawn(app, 1.5e9, 6);
  // mid core (id 2): cpi 1.5 -> 0.6 GIPS needs 0.9 GHz -> level 1.
  sim.spawn(app, 0.6e9, 2);
  const double end = 6.0;
  while (sim.now() < end) {
    loop.tick(sim);
    sim.step();
  }
  EXPECT_EQ(sim.vf_level(0), 0u);  // idle eff cluster parked
  EXPECT_EQ(sim.vf_level(1), 1u);
  EXPECT_EQ(sim.vf_level(2), 1u);
}

}  // namespace
}  // namespace topil
