// End-to-end sanity on the second real-board preset (Odroid-XU3 /
// Exynos 5422): nothing in the pipeline, governors, or workloads is
// HiKey-specific. The A15's heavy power envelope makes the LITTLE cluster
// relatively more attractive than on the Kirin 970.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "governors/powersave.hpp"
#include "governors/topil_governor.hpp"
#include "il/pipeline.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

TEST(SecondPlatform, PipelineTrainsAndGovernorsRunOnOdroid) {
  const PlatformSpec odroid = PlatformSpec::odroid_xu3();

  // Design time on the Odroid: the application database applies (its
  // per-cluster entries describe in-order vs out-of-order cores).
  il::IlPipeline pipeline(odroid, CoolingConfig::fan());
  il::PipelineConfig config;
  config.num_scenarios = 12;
  config.hidden = {24, 24};
  config.trainer.max_epochs = 12;
  config.trainer.patience = 12;
  config.max_examples = 4000;
  const il::Dataset dataset = pipeline.build_dataset(config);
  ASSERT_GT(dataset.size(), 100u);
  EXPECT_EQ(dataset.feature_width(), 21u);  // same 2-cluster 8-core shape
  const il::PipelineResult trained = pipeline.train_on(config, dataset);

  // Run time: the NPU-less board transparently uses CPU inference.
  WorkloadGenerator generator(odroid);
  WorkloadGenerator::MixedConfig wc;
  wc.num_apps = 6;
  wc.arrival_rate_per_s = 0.05;
  wc.seed = 3;
  const Workload workload =
      generator.mixed(wc, AppDatabase::instance().mixed_pool());

  TopIlGovernor topil(il::IlPolicyModel(trained.model, odroid));
  ExperimentConfig run;
  run.cooling = CoolingConfig::fan();
  run.max_duration_s = 1800.0;
  const ExperimentResult il_result =
      run_experiment(odroid, topil, workload, run);
  EXPECT_EQ(il_result.apps_completed, workload.size());

  auto ondemand = make_gts_ondemand();
  const ExperimentResult od_result =
      run_experiment(odroid, *ondemand, workload, run);
  EXPECT_EQ(od_result.apps_completed, workload.size());

  // The power-hungry A15 at peak makes ondemand's favourite strategy
  // expensive: TOP-IL must be cooler here too.
  EXPECT_LT(il_result.avg_temp_c, od_result.avg_temp_c);
}

TEST(SecondPlatform, StressFortyAppsNoCrashAndFairSharing) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  SimConfig config;
  config.sensor.noise_stddev_c = 0.0;
  SystemSim sim(platform, CoolingConfig::no_fan(), config);
  sim.request_vf_level(kBigCluster,
                       platform.cluster(kBigCluster).vf.num_levels() - 1);
  sim.request_vf_level(kLittleCluster,
                       platform.cluster(kLittleCluster).vf.num_levels() - 1);
  const AppSpec app = make_single_phase_app(
      "s", 1e13, {2.0, 0.1, 0.9}, {1.0, 0.05, 1.0}, 0.01, false);
  // 40 identical apps, 5 per core: gross oversubscription.
  std::vector<Pid> pids;
  for (int i = 0; i < 40; ++i) {
    pids.push_back(sim.spawn(app, 1e8, static_cast<CoreId>(i % 8)));
  }
  sim.run_for(10.0);
  // Every app on the same cluster retires a near-equal share.
  RunningStats big_insts;
  RunningStats little_insts;
  for (Pid pid : pids) {
    const Process& proc = sim.process(pid);
    (platform.cluster_of_core(proc.core()) == kBigCluster ? big_insts
                                                          : little_insts)
        .add(proc.instructions_retired());
  }
  EXPECT_LT(big_insts.stddev() / big_insts.mean(), 0.02);
  EXPECT_LT(little_insts.stddev() / little_insts.mean(), 0.02);
  // And the chip is under DTM control, not thermal runaway.
  EXPECT_LT(sim.thermal().max_core_temp_c(), 95.0);
}

}  // namespace
}  // namespace topil
