#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "il/trace_collector.hpp"

namespace topil {
namespace {

// Reproduces the paper's motivational example (Fig. 1) against the
// substrate: the QoS-optimal cluster depends on the application, and
// high-QoS background applications erase the difference because of
// per-cluster DVFS.
class MotivationalTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  il::TraceCollector collector_{platform_, CoolingConfig::fan()};

  // Steady-state peak temperature with the AoI alone on `core` at the
  // minimum VF levels satisfying a 30% QoS target (Scenario 1), or with a
  // peak-level background (Scenario 2).
  double scenario_temp(const AppSpec& app, CoreId core,
                       bool peak_background) const {
    const ClusterId cluster = platform_.cluster_of_core(core);
    std::vector<std::size_t> levels(2, 0);
    if (peak_background) {
      levels = {platform_.cluster(kLittleCluster).vf.num_levels() - 1,
                platform_.cluster(kBigCluster).vf.num_levels() - 1};
    } else {
      const double target = 0.3 * app.peak_ips(platform_);
      std::size_t level =
          app.min_level_for_ips(platform_, cluster, target);
      TOPIL_REQUIRE(level < platform_.cluster(cluster).vf.num_levels(),
                    "target unattainable in scenario");
      levels[cluster] = level;
    }

    std::vector<double> activity(platform_.num_cores(), 0.0);
    activity[core] = app.phase(0).perf[cluster].activity;
    if (peak_background) {
      // High-QoS background applications saturate every core of both
      // clusters (as in the paper's Scenario 2), so the AoI time-shares
      // whichever core it is mapped to.
      const AppSpec& bg = AppDatabase::instance().by_name("syr2k");
      for (CoreId c = 0; c < platform_.num_cores(); ++c) {
        const double bg_act =
            bg.phase(0).perf[platform_.cluster_of_core(c)].activity;
        activity[c] =
            (c == core) ? 0.5 * (bg_act + activity[c]) : bg_act;
      }
    }
    const auto temps = collector_.steady_temps(levels, activity);
    const Floorplan fp = Floorplan::for_platform(platform_);
    double peak = 0.0;
    for (CoreId c = 0; c < platform_.num_cores(); ++c) {
      peak = std::max(peak, temps[fp.core_nodes[c]]);
    }
    return peak;
  }
};

TEST_F(MotivationalTest, Scenario1AdiPrefersBigCluster) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const double t_little = scenario_temp(adi, 2, false);
  const double t_big = scenario_temp(adi, 6, false);
  EXPECT_LT(t_big, t_little - 0.2);
}

TEST_F(MotivationalTest, Scenario1SeidelSlightlyPrefersLittleCluster) {
  const AppSpec& seidel = AppDatabase::instance().by_name("seidel-2d");
  const double t_little = scenario_temp(seidel, 2, false);
  const double t_big = scenario_temp(seidel, 6, false);
  // "a small advantage of the LITTLE cluster": cooler, but by little.
  EXPECT_LT(t_little, t_big);
  EXPECT_LT(t_big - t_little, 3.0);
}

TEST_F(MotivationalTest, Scenario2BackgroundErasesTheDifference) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const double t_little = scenario_temp(adi, 2, true);
  const double t_big = scenario_temp(adi, 6, true);
  // With both clusters forced to peak levels, adi's mapping barely
  // matters (the paper: "almost the same temperature").
  EXPECT_LT(std::abs(t_big - t_little), 1.5);
}

TEST_F(MotivationalTest, Scenario1DifferenceExceedsScenario2Difference) {
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  const double d1 = std::abs(scenario_temp(adi, 2, false) -
                             scenario_temp(adi, 6, false));
  const double d2 = std::abs(scenario_temp(adi, 2, true) -
                             scenario_temp(adi, 6, true));
  EXPECT_GT(d1, d2);
}

}  // namespace
}  // namespace topil
