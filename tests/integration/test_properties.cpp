// Cross-module property sweeps (parameterized): physical monotonicities
// and control-loop invariants that must hold for any operating point.

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "governors/dvfs_control.hpp"
#include "il/features.hpp"
#include "il/trace_collector.hpp"

namespace topil {
namespace {

const PlatformSpec& platform() {
  static const PlatformSpec p = PlatformSpec::hikey970();
  return p;
}

// --- Thermal monotonicity: adding power anywhere heats everything. ---

class ThermalMonotonicity : public ::testing::TestWithParam<CoreId> {};

TEST_P(ThermalMonotonicity, MorePowerOnAnyCoreHeatsEveryNode) {
  const CoreId hot_core = GetParam();
  const Floorplan fp = Floorplan::for_platform(platform());
  const ThermalModel tm(platform(), fp, CoolingConfig::fan());
  const PowerModel pm(platform());

  std::vector<double> base_activity(8, 0.3);
  std::vector<double> more_activity = base_activity;
  more_activity[hot_core] = 1.0;
  const std::vector<double> temps(8, 45.0);

  const auto base =
      tm.steady_state(pm.compute({4, 4}, base_activity, temps, false));
  const auto more =
      tm.steady_state(pm.compute({4, 4}, more_activity, temps, false));
  for (std::size_t node = 0; node < base.size(); ++node) {
    EXPECT_GT(more[node], base[node]) << "node " << node;
  }
  // And the heated core is the locally hottest increase.
  double max_delta = 0.0;
  std::size_t max_node = 0;
  for (std::size_t node = 0; node < base.size(); ++node) {
    if (more[node] - base[node] > max_delta) {
      max_delta = more[node] - base[node];
      max_node = node;
    }
  }
  EXPECT_EQ(max_node, fp.core_nodes[hot_core]);
}

INSTANTIATE_TEST_SUITE_P(AllCores, ThermalMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// --- Eq. 1 estimate: monotone in the QoS target. ---

class MinLevelMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MinLevelMonotone, HigherTargetNeverNeedsLowerLevel) {
  const double measured_ips = GetParam();
  const VFTable& vf = platform().cluster(kBigCluster).vf;
  std::size_t prev = 0;
  for (double target = 1e8; target <= 4e9; target += 1e8) {
    const std::size_t level =
        il::estimate_min_level(vf, measured_ips, 1.21, target);
    EXPECT_GE(level, prev) << "target " << target;
    prev = level;
  }
  // Eventually unattainable.
  EXPECT_EQ(prev, vf.num_levels());
}

INSTANTIATE_TEST_SUITE_P(MeasuredIps, MinLevelMonotone,
                         ::testing::Values(2e8, 5e8, 1e9, 2e9));

// --- DVFS control loop: converges to a QoS-satisfying level for any
//     attainable target, and never overshoots by more than one step. ---

class DvfsConvergence : public ::testing::TestWithParam<double> {};

TEST_P(DvfsConvergence, ReachesSufficientLevelForAnyTarget) {
  const double fraction = GetParam();
  SimConfig config;
  config.sensor.noise_stddev_c = 0.0;
  SystemSim sim(platform(), CoolingConfig::fan(), config);
  DvfsControlLoop loop;
  loop.reset(sim);

  const AppSpec app = make_single_phase_app(
      "p", 1e13, {2.5, 0.2, 0.9}, {1.3, 0.1, 1.0}, 0.01, false);
  const double target =
      fraction * app.average_ips(kBigCluster,
                                 platform().cluster(kBigCluster).vf.max_freq());
  sim.spawn(app, target, 5);
  while (sim.now() < 8.0) {
    loop.tick(sim);
    sim.step();
  }

  // The settled level satisfies the target...
  const double freq = sim.freq_ghz(kBigCluster);
  EXPECT_GE(app.average_ips(kBigCluster, freq), target * 0.999);
  // ...and the level below it would not (minimality up to one step).
  const std::size_t level = sim.vf_level(kBigCluster);
  if (level >= 2) {
    const double below =
        platform().cluster(kBigCluster).vf.at(level - 2).freq_ghz;
    EXPECT_LT(app.average_ips(kBigCluster, below), target);
  }
}

INSTANTIATE_TEST_SUITE_P(TargetFractions, DvfsConvergence,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8, 0.95));

// --- Oracle traces: peak temperature monotone in both cluster levels for
//     every free core. ---

class TraceMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceMonotonicity, TemperatureRisesWithEitherClusterLevel) {
  il::Scenario scenario;
  scenario.aoi = &AppDatabase::instance().by_name(GetParam());
  scenario.background[0] = &AppDatabase::instance().by_name("syr2k");
  scenario.background[4] = &AppDatabase::instance().by_name("adi");
  const il::TraceCollector collector(platform(), CoolingConfig::fan());
  const il::ScenarioTraces traces = collector.collect(scenario);

  for (CoreId core : traces.free_cores()) {
    const auto& lg = traces.grid(kLittleCluster);
    const auto& bg = traces.grid(kBigCluster);
    for (std::size_t li = 0; li < lg.size(); ++li) {
      for (std::size_t bi = 0; bi < bg.size(); ++bi) {
        const double t = traces.at({lg[li], bg[bi]}, core).peak_temp_c;
        if (li > 0) {
          EXPECT_GT(t, traces.at({lg[li - 1], bg[bi]}, core).peak_temp_c);
        }
        if (bi > 0) {
          EXPECT_GT(t, traces.at({lg[li], bg[bi - 1]}, core).peak_temp_c);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Aois, TraceMonotonicity,
                         ::testing::Values("seidel-2d", "canneal",
                                           "swaptions"));

// --- Simulator: results approximately invariant to the tick size. ---

class TickInvariance : public ::testing::TestWithParam<double> {};

TEST_P(TickInvariance, InstructionsAndHeatMatchReference) {
  const double tick = GetParam();
  auto run = [&](double tick_s) {
    SimConfig config;
    config.tick_s = tick_s;
    config.sensor.noise_stddev_c = 0.0;
    SystemSim sim(platform(), CoolingConfig::fan(), config);
    sim.request_vf_level(kBigCluster, 5);
    const AppSpec app = make_single_phase_app(
        "p", 1e13, {2.5, 0.2, 0.9}, {1.3, 0.1, 1.0}, 0.02, false);
    const Pid pid = sim.spawn(app, 1e8, 5);
    sim.run_for(20.0);
    return std::make_pair(sim.process(pid).instructions_retired(),
                          sim.thermal().max_core_temp_c());
  };
  const auto [ref_insts, ref_temp] = run(0.01);
  const auto [insts, temp] = run(tick);
  EXPECT_NEAR(insts / ref_insts, 1.0, 0.01) << "tick " << tick;
  EXPECT_NEAR(temp, ref_temp, 0.2) << "tick " << tick;
}

INSTANTIATE_TEST_SUITE_P(Ticks, TickInvariance,
                         ::testing::Values(0.002, 0.005, 0.02, 0.05));

}  // namespace
}  // namespace topil
