#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil {
namespace {

WorkloadItem item(const char* app, double qos, double arrival) {
  WorkloadItem i;
  i.app_name = app;
  i.qos_target_ips = qos;
  i.arrival_time = arrival;
  return i;
}

TEST(Workload, KeepsItemsSortedByArrival) {
  Workload w({item("adi", 1e8, 5.0), item("syr2k", 2e8, 1.0),
              item("canneal", 3e8, 3.0)});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.items()[0].app_name, "syr2k");
  EXPECT_EQ(w.items()[1].app_name, "canneal");
  EXPECT_EQ(w.items()[2].app_name, "adi");
  EXPECT_DOUBLE_EQ(w.last_arrival_time(), 5.0);
}

TEST(Workload, AddKeepsOrder) {
  Workload w;
  EXPECT_TRUE(w.empty());
  w.add(item("adi", 1e8, 2.0));
  w.add(item("syr2k", 1e8, 1.0));
  EXPECT_EQ(w.items()[0].app_name, "syr2k");
}

TEST(Workload, StableForEqualArrivalTimes) {
  Workload w;
  w.add(item("adi", 1e8, 1.0));
  w.add(item("syr2k", 1e8, 1.0));
  EXPECT_EQ(w.items()[0].app_name, "adi");
  EXPECT_EQ(w.items()[1].app_name, "syr2k");
}

TEST(Workload, ValidatesItems) {
  EXPECT_THROW(Workload({item("unknown-app", 1e8, 0.0)}), InvalidArgument);
  EXPECT_THROW(Workload({item("adi", 0.0, 0.0)}), InvalidArgument);
  EXPECT_THROW(Workload({item("adi", 1e8, -1.0)}), InvalidArgument);
  Workload w;
  EXPECT_THROW(w.last_arrival_time(), InvalidArgument);
}

TEST(Workload, ResolvesAppsFromDatabase) {
  const WorkloadItem i = item("seidel-2d", 1e8, 0.0);
  EXPECT_EQ(Workload::app_of(i).name, "seidel-2d");
}

}  // namespace
}  // namespace topil
