#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace topil {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  WorkloadGenerator generator_{platform_};
  std::vector<const AppSpec*> pool_ = AppDatabase::instance().mixed_pool();
};

TEST_F(GeneratorTest, MixedWorkloadShape) {
  WorkloadGenerator::MixedConfig config;
  config.num_apps = 20;
  config.seed = 5;
  const Workload w = generator_.mixed(config, pool_);
  ASSERT_EQ(w.size(), 20u);
  EXPECT_DOUBLE_EQ(w.items().front().arrival_time, 0.0);
  for (const auto& item : w.items()) {
    const AppSpec& app = Workload::app_of(item);
    const double fraction = item.qos_target_ips / app.peak_ips(platform_);
    EXPECT_GE(fraction, config.qos_fraction_min - 1e-9);
    EXPECT_LE(fraction, config.qos_fraction_max + 1e-9);
  }
}

TEST_F(GeneratorTest, DeterministicPerSeed) {
  WorkloadGenerator::MixedConfig config;
  config.seed = 9;
  const Workload a = generator_.mixed(config, pool_);
  const Workload b = generator_.mixed(config, pool_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items()[i].app_name, b.items()[i].app_name);
    EXPECT_DOUBLE_EQ(a.items()[i].arrival_time, b.items()[i].arrival_time);
  }
  config.seed = 10;
  const Workload c = generator_.mixed(config, pool_);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a.items()[i].app_name != c.items()[i].app_name;
  }
  EXPECT_TRUE(differs);
}

TEST_F(GeneratorTest, ArrivalRateControlsSpacing) {
  WorkloadGenerator::MixedConfig slow;
  slow.num_apps = 50;
  slow.arrival_rate_per_s = 0.02;
  slow.seed = 3;
  WorkloadGenerator::MixedConfig fast = slow;
  fast.arrival_rate_per_s = 0.2;
  const Workload ws = generator_.mixed(slow, pool_);
  const Workload wf = generator_.mixed(fast, pool_);
  EXPECT_GT(ws.last_arrival_time(), wf.last_arrival_time() * 3.0);
  // Mean inter-arrival approximates 1/rate.
  EXPECT_NEAR(ws.last_arrival_time() / 49.0, 50.0, 20.0);
}

TEST_F(GeneratorTest, SingleAppTargetReachableOnLittleAtPeak) {
  for (const AppSpec* app : AppDatabase::instance().unseen_apps()) {
    const Workload w = generator_.single(*app);
    ASSERT_EQ(w.size(), 1u);
    const double little_peak = app->average_ips(
        kLittleCluster, platform_.cluster(kLittleCluster).vf.max_freq());
    EXPECT_LE(w.items()[0].qos_target_ips, little_peak);
    EXPECT_GT(w.items()[0].qos_target_ips, 0.5 * little_peak);
  }
}

TEST_F(GeneratorTest, ValidatesConfig) {
  WorkloadGenerator::MixedConfig bad;
  bad.num_apps = 0;
  EXPECT_THROW(generator_.mixed(bad, pool_), InvalidArgument);
  bad = WorkloadGenerator::MixedConfig{};
  bad.arrival_rate_per_s = 0.0;
  EXPECT_THROW(generator_.mixed(bad, pool_), InvalidArgument);
  bad = WorkloadGenerator::MixedConfig{};
  bad.qos_fraction_min = 0.9;
  bad.qos_fraction_max = 0.5;
  EXPECT_THROW(generator_.mixed(bad, pool_), InvalidArgument);
  EXPECT_THROW(generator_.mixed(WorkloadGenerator::MixedConfig{}, {}),
               InvalidArgument);
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  EXPECT_THROW(generator_.single(adi, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil
