#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "governors/powersave.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  WorkloadGenerator generator_{platform_};

  ExperimentConfig quick() const {
    ExperimentConfig c;
    c.sim.sensor.noise_stddev_c = 0.0;
    c.max_duration_s = 600.0;
    return c;
  }
};

TEST_F(ExperimentTest, RunsWorkloadToCompletion) {
  auto governor = make_gts_ondemand();
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("swaptions"));
  const ExperimentResult result =
      run_experiment(platform_, *governor, w, quick());
  EXPECT_EQ(result.governor, "GTS/ondemand");
  EXPECT_EQ(result.apps_completed, 1u);
  EXPECT_EQ(result.apps_total, 1u);
  EXPECT_GT(result.duration_s, 1.0);
  EXPECT_LT(result.duration_s, 600.0);
  EXPECT_GT(result.avg_temp_c, 25.0);
  EXPECT_GE(result.peak_temp_c, result.avg_temp_c);
  // ondemand at peak meets the LITTLE-peak-feasible target.
  EXPECT_EQ(result.qos_violations, 0u);
}

TEST_F(ExperimentTest, PowersaveViolatesDemandingQos) {
  auto governor = make_gts_powersave();
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("swaptions"));
  const ExperimentResult result =
      run_experiment(platform_, *governor, w, quick());
  EXPECT_EQ(result.apps_completed, 1u);
  EXPECT_EQ(result.qos_violations, 1u);
  EXPECT_DOUBLE_EQ(result.qos_violation_fraction(), 1.0);
}

TEST_F(ExperimentTest, MaxDurationCapsRun) {
  auto governor = make_gts_powersave();
  WorkloadGenerator::MixedConfig config;
  config.num_apps = 12;
  config.arrival_rate_per_s = 0.1;
  config.seed = 2;
  const Workload w =
      generator_.mixed(config, AppDatabase::instance().mixed_pool());
  ExperimentConfig run = quick();
  run.max_duration_s = 5.0;
  const ExperimentResult result =
      run_experiment(platform_, *governor, w, run);
  EXPECT_NEAR(result.duration_s, 5.0, 0.05);
  EXPECT_LT(result.apps_completed, 12u);
}

TEST_F(ExperimentTest, CpuTimeBreakdownAccountsBusyTime) {
  auto governor = make_gts_ondemand();
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("blackscholes"));
  const ExperimentResult result =
      run_experiment(platform_, *governor, w, quick());
  double total = 0.0;
  for (const auto& per_level : result.cpu_time_s) {
    for (double t : per_level) total += t;
  }
  // One app alone: busy time roughly equals the run duration.
  EXPECT_NEAR(total, result.duration_s, result.duration_s * 0.1);
}

TEST_F(ExperimentTest, ObserverSeesEveryTick) {
  auto governor = make_gts_ondemand();
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("swaptions"));
  ExperimentConfig run = quick();
  std::size_t ticks = 0;
  run.observer = [&](const SystemSim& sim) {
    ++ticks;
    EXPECT_GE(sim.now(), 0.0);
  };
  const ExperimentResult result =
      run_experiment(platform_, *governor, w, run);
  EXPECT_NEAR(static_cast<double>(ticks) * 0.01, result.duration_s, 0.05);
}

TEST_F(ExperimentTest, RejectsEmptyWorkload) {
  auto governor = make_gts_ondemand();
  EXPECT_THROW(run_experiment(platform_, *governor, Workload{}, quick()),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
