#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "governors/powersave.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  WorkloadGenerator generator_{platform_};

  ExperimentConfig quick() const {
    ExperimentConfig c;
    c.max_duration_s = 300.0;
    return c;
  }
};

TEST_F(RunnerTest, AggregatesAcrossRepetitions) {
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("swaptions"));
  std::size_t factory_calls = 0;
  const RepeatedResult result = run_repeated(
      platform_,
      [&](std::size_t rep) {
        ++factory_calls;
        EXPECT_LT(rep, 3u);
        return make_gts_ondemand();
      },
      w, quick(), 3);
  EXPECT_EQ(factory_calls, 3u);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.governor, "GTS/ondemand");
  EXPECT_EQ(result.avg_temp_c.count(), 3u);
  EXPECT_GT(result.avg_temp_c.mean(), 25.0);
  // Sensor-noise seeds differ but the physics is the same: small spread.
  EXPECT_LT(result.avg_temp_c.stddev(), 2.0);
}

TEST_F(RunnerTest, SimSeedVariesPerRepetition) {
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("canneal"));
  const RepeatedResult result = run_repeated(
      platform_, [](std::size_t) { return make_gts_powersave(); }, w,
      quick(), 2);
  // With sensor noise enabled by default the two runs are not bit-equal.
  EXPECT_EQ(result.runs.size(), 2u);
}

TEST_F(RunnerTest, ValidatesArguments) {
  const Workload w = generator_.single(
      AppDatabase::instance().by_name("swaptions"));
  EXPECT_THROW(run_repeated(
                   platform_, [](std::size_t) { return make_gts_ondemand(); },
                   w, quick(), 0),
               InvalidArgument);
  EXPECT_THROW(
      run_repeated(
          platform_,
          [](std::size_t) { return std::unique_ptr<Governor>{}; }, w,
          quick(), 1),
      InvalidArgument);
}

}  // namespace
}  // namespace topil
