#include "core/training.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

TEST(Training, HikeyPlatformIsASingleton) {
  const PlatformSpec& a = hikey970_platform();
  const PlatformSpec& b = hikey970_platform();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_cores(), 8u);
}

TEST(Training, RlPretrainingProducesALearnedTable) {
  // Tiny budget: a couple of simulated minutes is enough to verify the
  // loop runs episodes, learns, and carries the table across them.
  const rl::QTable table =
      pretrain_rl_qtable(hikey970_platform(), /*seed=*/1,
                         /*sim_hours=*/0.02);
  EXPECT_EQ(table.num_entries(), 2304u);
  std::size_t changed = 0;
  for (std::size_t s = 0; s < table.num_states(); ++s) {
    for (std::size_t a = 0; a < table.num_actions(); ++a) {
      if (table.q(s, a) != 25.0) ++changed;
    }
  }
  EXPECT_GT(changed, 10u);
}

TEST(Training, RlPretrainingSeedsDiffer) {
  const rl::QTable a =
      pretrain_rl_qtable(hikey970_platform(), 1, 0.01);
  const rl::QTable b =
      pretrain_rl_qtable(hikey970_platform(), 2, 0.01);
  bool differs = false;
  for (std::size_t s = 0; s < a.num_states() && !differs; ++s) {
    for (std::size_t act = 0; act < a.num_actions(); ++act) {
      differs |= a.q(s, act) != b.q(s, act);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Training, RejectsNonPositiveDuration) {
  EXPECT_THROW(pretrain_rl_qtable(hikey970_platform(), 1, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
