#include "core/dagger.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/training.hpp"

namespace topil::il {
namespace {

DaggerConfig tiny_config() {
  DaggerConfig config;
  config.iterations = 2;
  config.rollouts_per_iteration = 1;
  config.rollout_duration_s = 60.0;
  config.workload_apps = 4;
  config.arrival_rate_per_s = 0.2;
  config.training.hidden = {16, 16};
  config.training.trainer.max_epochs = 8;
  config.training.trainer.patience = 8;
  config.seed = 5;
  return config;
}

TEST(Dagger, ExpertRolloutProducesLabeledStates) {
  const DaggerTrainer trainer(hikey970_platform(), CoolingConfig::fan());
  const auto examples =
      trainer.collect_rollout(nullptr, tiny_config(), 3);
  ASSERT_GT(examples.size(), 10u);
  for (const auto& ex : examples) {
    EXPECT_EQ(ex.features.size(), 21u);
    EXPECT_EQ(ex.labels.size(), 8u);
    float best = -2.0f;
    for (float l : ex.labels) {
      EXPECT_TRUE(l == -1.0f || (l >= 0.0f && l <= 1.0f + 1e-6));
      best = std::max(best, l);
    }
    EXPECT_NEAR(best, 1.0f, 1e-5);  // some mapping is always optimal
  }
}

TEST(Dagger, PolicyRolloutDiffersFromExpertRollout) {
  const DaggerTrainer trainer(hikey970_platform(), CoolingConfig::fan());
  const DaggerConfig config = tiny_config();
  const auto expert = trainer.collect_rollout(nullptr, config, 3);

  nn::Topology topo;
  topo.inputs = 21;
  topo.hidden = {16, 16};
  topo.outputs = 8;
  nn::Mlp untrained(topo);
  untrained.init(9);
  const auto policy = trainer.collect_rollout(&untrained, config, 3);
  ASSERT_FALSE(policy.empty());
  // An untrained policy visits different states than the expert.
  bool differs = expert.size() != policy.size();
  for (std::size_t i = 0; !differs && i < expert.size(); ++i) {
    differs |= expert[i].features != policy[i].features;
  }
  EXPECT_TRUE(differs);
}

TEST(Dagger, FullLoopAggregatesAndImproves) {
  const DaggerTrainer trainer(hikey970_platform(), CoolingConfig::fan());
  const DaggerResult result = trainer.run(tiny_config());
  ASSERT_EQ(result.iterations.size(), 2u);
  EXPECT_GT(result.iterations[0].new_examples, 0u);
  EXPECT_GT(result.iterations[1].total_examples,
            result.iterations[0].total_examples);
  // The final model must beat the all-zeros predictor on its own data.
  EXPECT_LT(result.iterations.back().validation_loss, 0.5);
  EXPECT_EQ(result.model.topology().hidden,
            (std::vector<std::size_t>{16, 16}));
}

TEST(Dagger, ValidatesConfig) {
  const DaggerTrainer trainer(hikey970_platform(), CoolingConfig::fan());
  DaggerConfig bad = tiny_config();
  bad.iterations = 0;
  EXPECT_THROW(trainer.run(bad), InvalidArgument);
}

}  // namespace
}  // namespace topil::il
