#include "thermal/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace topil {
namespace {

ThermalSensor::Config noiseless() {
  ThermalSensor::Config c;
  c.noise_stddev_c = 0.0;
  c.quantization_c = 0.0;
  return c;
}

TEST(ThermalSensor, SampleAndHoldAt20Hz) {
  ThermalSensor sensor(noiseless(), Rng(1));
  EXPECT_DOUBLE_EQ(sensor.observe(0.0, 40.0), 40.0);
  // Between sample points the held value is returned even if the true
  // temperature changes.
  EXPECT_DOUBLE_EQ(sensor.observe(0.01, 55.0), 40.0);
  EXPECT_DOUBLE_EQ(sensor.observe(0.04, 60.0), 40.0);
  // At the next 50 ms boundary a fresh sample is taken.
  EXPECT_DOUBLE_EQ(sensor.observe(0.05, 60.0), 60.0);
  EXPECT_DOUBLE_EQ(sensor.last_reading_c(), 60.0);
}

TEST(ThermalSensor, QuantizationRoundsToGrid) {
  ThermalSensor::Config c;
  c.noise_stddev_c = 0.0;
  c.quantization_c = 0.5;
  ThermalSensor sensor(c, Rng(1));
  EXPECT_DOUBLE_EQ(sensor.observe(0.0, 40.26), 40.5);
}

TEST(ThermalSensor, NoiseHasConfiguredSpread) {
  ThermalSensor::Config c;
  c.noise_stddev_c = 0.2;
  c.quantization_c = 0.0;
  ThermalSensor sensor(c, Rng(7));
  double sum = 0.0;
  double sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double r = sensor.observe(i * 0.05, 50.0);
    sum += r;
    sq += r * r;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 50.0, 0.02);
  EXPECT_NEAR(stddev, 0.2, 0.03);
}

TEST(ThermalSensor, ResetForcesFreshSample) {
  ThermalSensor sensor(noiseless(), Rng(1));
  sensor.observe(0.0, 30.0);
  sensor.reset();
  EXPECT_DOUBLE_EQ(sensor.observe(0.001, 45.0), 45.0);
}

TEST(ThermalSensor, ValidatesConfig) {
  ThermalSensor::Config bad;
  bad.sample_period_s = 0.0;
  EXPECT_THROW(ThermalSensor(bad, Rng(1)), InvalidArgument);
  bad = ThermalSensor::Config{};
  bad.noise_stddev_c = -1.0;
  EXPECT_THROW(ThermalSensor(bad, Rng(1)), InvalidArgument);
}

}  // namespace
}  // namespace topil
