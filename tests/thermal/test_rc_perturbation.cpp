// Regression tests for the RC-network perturbation paths: every mutator
// must re-invalidate the cached max_stable_dt (a perturbed network that
// silently kept the old bound could sub-step explicit integration past the
// stable region) and keep the Laplacian row sums consistent.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "thermal/rc_network.hpp"

namespace topil {
namespace {

RCNetwork small_network() {
  RCNetwork net({1.0, 2.0, 4.0}, {0.0, 0.0, 0.5});
  net.add_conductance(0, 1, 2.0);
  net.add_conductance(1, 2, 1.0);
  return net;
}

TEST(RCPerturbation, ScaleConductanceInvalidatesStableDtCache) {
  RCNetwork net = small_network();
  const double before = net.max_stable_dt();
  EXPECT_EQ(net.stable_dt_scan_count(), 1u);
  // Cached: repeated queries do not rescan.
  (void)net.max_stable_dt();
  EXPECT_EQ(net.stable_dt_scan_count(), 1u);

  // Stiffening the hottest coupling by 10x must shrink the stable step —
  // and, critically, must force a rescan on the next query.
  net.scale_conductance(0, 1, 10.0);
  const double after = net.max_stable_dt();
  EXPECT_EQ(net.stable_dt_scan_count(), 2u);
  EXPECT_LT(after, before);
  EXPECT_DOUBLE_EQ(net.conductance(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(net.conductance(1, 0), 20.0);
}

TEST(RCPerturbation, SetAmbientConductanceInvalidatesStableDtCache) {
  RCNetwork net = small_network();
  const double before = net.max_stable_dt();
  net.set_ambient_conductance(2, 8.0);
  EXPECT_DOUBLE_EQ(net.ambient_conductance(2), 8.0);
  const double after = net.max_stable_dt();
  EXPECT_EQ(net.stable_dt_scan_count(), 2u);
  EXPECT_LT(after, before);
}

TEST(RCPerturbation, SetCapacitanceInvalidatesStableDtCache) {
  RCNetwork net = small_network();
  const double before = net.max_stable_dt();
  // The stability bound is min_i C_i / row_sum_i; halving the most
  // constrained node's capacitance halves the bound.
  net.set_capacitance(0, 0.5);
  const double after = net.max_stable_dt();
  EXPECT_EQ(net.stable_dt_scan_count(), 2u);
  EXPECT_LT(after, before);
}

TEST(RCPerturbation, MutatedNetworkMatchesFreshlyBuiltEquivalent) {
  // A network mutated into a given topology must be indistinguishable —
  // steady state, transient step, structural hash — from one constructed
  // that way directly. This pins down the row-sum bookkeeping.
  RCNetwork mutated = small_network();
  mutated.scale_conductance(0, 1, 0.5);
  mutated.set_ambient_conductance(2, 1.25);
  mutated.set_capacitance(1, 3.0);

  RCNetwork fresh({1.0, 3.0, 4.0}, {0.0, 0.0, 1.25});
  fresh.add_conductance(0, 1, 1.0);
  fresh.add_conductance(1, 2, 1.0);

  EXPECT_EQ(mutated.structural_hash(), fresh.structural_hash());
  EXPECT_DOUBLE_EQ(mutated.max_stable_dt(), fresh.max_stable_dt());

  const std::vector<double> power = {3.0, 0.0, 1.0};
  const std::vector<double> sa = mutated.steady_state(power, 25.0);
  const std::vector<double> sb = fresh.steady_state(power, 25.0);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i], sb[i]) << "node " << i;
  }

  std::vector<double> ta(3, 25.0);
  std::vector<double> tb(3, 25.0);
  for (int k = 0; k < 50; ++k) {
    mutated.step(ta, power, 25.0, 0.05);
    fresh.step(tb, power, 25.0, 0.05);
  }
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i], tb[i]) << "node " << i;
  }
}

TEST(RCPerturbation, StructuralHashTracksEveryMutator) {
  RCNetwork net = small_network();
  const std::uint64_t h0 = net.structural_hash();
  net.scale_conductance(0, 1, 2.0);
  const std::uint64_t h1 = net.structural_hash();
  EXPECT_NE(h0, h1);
  net.set_ambient_conductance(0, 0.1);
  const std::uint64_t h2 = net.structural_hash();
  EXPECT_NE(h1, h2);
  net.set_capacitance(2, 1.0);
  EXPECT_NE(h2, net.structural_hash());
}

TEST(RCPerturbation, MutatorsValidateArguments) {
  RCNetwork net = small_network();
  EXPECT_THROW(net.scale_conductance(0, 0, 2.0), InvalidArgument);
  EXPECT_THROW(net.scale_conductance(0, 2, 2.0), InvalidArgument);  // absent
  EXPECT_THROW(net.scale_conductance(0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(net.set_ambient_conductance(3, 1.0), InvalidArgument);
  EXPECT_THROW(net.set_ambient_conductance(0, -1.0), InvalidArgument);
  EXPECT_THROW(net.set_capacitance(1, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace topil
