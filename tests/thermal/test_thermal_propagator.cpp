#include "thermal/thermal_propagator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "platform/floorplan.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/thermal_model.hpp"

namespace topil {
namespace {

RCNetwork three_node_net() {
  RCNetwork net({0.6, 2.0, 20.0}, {0.0, 0.0, 0.25});
  net.add_conductance(0, 1, 2.0);
  net.add_conductance(1, 2, 3.0);
  return net;
}

// Single node: T(t+dt) = T_ss + (T - T_ss) exp(-G/C dt) exactly.
TEST(ThermalPropagator, SingleNodeMatchesAnalyticSolution) {
  const double c = 2.0;
  const double g = 0.5;
  RCNetwork net({c}, {g});
  const double dt = 1.7;
  const ThermalPropagator prop(net, dt);

  std::vector<double> temps = {25.0};
  ThermalPropagator::Workspace ws;
  prop.step(temps, {1.0}, 25.0, ws);
  const double target = 25.0 + 1.0 / g;
  const double expected = target + (25.0 - target) * std::exp(-g / c * dt);
  EXPECT_NEAR(temps[0], expected, 1e-12);
}

// The propagator is exact for any dt: one big step equals many small ones.
TEST(ThermalPropagator, StepIsExactUnderComposition) {
  const RCNetwork net = three_node_net();
  const std::vector<double> power = {1.5, 0.3, 0.0};

  const ThermalPropagator big(net, 1.0);
  const ThermalPropagator small(net, 0.1);
  ThermalPropagator::Workspace ws;

  std::vector<double> once(3, 25.0);
  big.step(once, power, 25.0, ws);
  std::vector<double> tenfold(3, 25.0);
  for (int i = 0; i < 10; ++i) small.step(tenfold, power, 25.0, ws);

  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_NEAR(once[n], tenfold[n], 1e-9) << "node " << n;
  }
}

// Against the Heun reference at a small step the two integrators agree to
// the Heun truncation error; over a long horizon both reach steady state.
TEST(ThermalPropagator, TracksHeunWithinTruncationError) {
  const RCNetwork net = three_node_net();
  const std::vector<double> power = {1.5, 0.3, 0.0};
  const double dt = 0.01;

  const ThermalPropagator prop(net, dt);
  ThermalPropagator::Workspace ws;
  std::vector<double> exact(3, 25.0);
  std::vector<double> heun(3, 25.0);
  RCNetwork::StepWorkspace heun_ws;
  for (int i = 0; i < 2000; ++i) {
    prop.step(exact, power, 25.0, ws);
    net.step(heun, power, 25.0, dt, heun_ws);
    for (std::size_t n = 0; n < 3; ++n) {
      ASSERT_NEAR(exact[n], heun[n], 5e-3) << "tick " << i << " node " << n;
    }
  }
  // The heatsink time constant is ~80 s, so run the exact propagator far
  // past the lockstep window before checking steady-state convergence.
  for (int i = 2000; i < 100000; ++i) prop.step(exact, power, 25.0, ws);
  const auto target = net.steady_state(power, 25.0);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_NEAR(exact[n], target[n], 1e-3) << "node " << n;
  }
}

// Floating network: the zero eigenvalue must be handled exactly (phi -> dt),
// conserving total heat content.
TEST(ThermalPropagator, FloatingNetworkConservesEnergy) {
  RCNetwork net({1.0, 3.0}, {0.0, 0.0});
  net.add_conductance(0, 1, 1.0);
  const ThermalPropagator prop(net, 0.5);
  ThermalPropagator::Workspace ws;

  std::vector<double> temps = {100.0, 20.0};
  const std::vector<double> power = {0.2, 0.0};
  double heat = 1.0 * 100.0 + 3.0 * 20.0;
  for (int i = 0; i < 100; ++i) {
    prop.step(temps, power, 25.0, ws);
    heat += 0.2 * 0.5;  // injected energy accumulates in the capacitances
    ASSERT_NEAR(1.0 * temps[0] + 3.0 * temps[1], heat, 1e-6) << "step " << i;
  }
}

TEST(ThermalPropagator, ValidatesArguments) {
  const RCNetwork net = three_node_net();
  EXPECT_THROW(ThermalPropagator(net, 0.0), InvalidArgument);
  EXPECT_THROW(ThermalPropagator(net, -1.0), InvalidArgument);
  const ThermalPropagator prop(net, 0.1);
  ThermalPropagator::Workspace ws;
  std::vector<double> bad(2, 25.0);
  EXPECT_THROW(prop.step(bad, {0.0, 0.0, 0.0}, 25.0, ws), InvalidArgument);
  std::vector<double> temps(3, 25.0);
  EXPECT_THROW(prop.step(temps, {0.0}, 25.0, ws), InvalidArgument);
}

TEST(ThermalPropagator, SharedCacheReturnsSameInstancePerNetworkAndDt) {
  ThermalPropagator::clear_shared_cache();
  const RCNetwork a = three_node_net();
  const RCNetwork b = three_node_net();  // structurally identical
  RCNetwork c = three_node_net();
  c.add_conductance(0, 2, 0.5);  // structurally different

  const auto p1 = ThermalPropagator::shared(a, 0.01);
  const auto p2 = ThermalPropagator::shared(b, 0.01);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(ThermalPropagator::shared_cache_size(), 1u);

  const auto p3 = ThermalPropagator::shared(a, 0.02);
  EXPECT_NE(p1.get(), p3.get());
  const auto p4 = ThermalPropagator::shared(c, 0.01);
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(ThermalPropagator::shared_cache_size(), 3u);

  ThermalPropagator::clear_shared_cache();
  EXPECT_EQ(ThermalPropagator::shared_cache_size(), 0u);
}

// Two structurally identical networks built from the same (jittered)
// floorplan share one cache entry; mutating the floorplan through the
// scenario-fuzzing jitter knobs — a different seed or amplitude — must
// miss, because the perturbed capacitances/conductances hash differently.
TEST(ThermalPropagator, CacheSharesIdenticalFloorplansMissesOnMutation) {
  ThermalPropagator::clear_shared_cache();
  const PlatformSpec platform = PlatformSpec::hikey970();
  const CoolingConfig cooling = CoolingConfig::fan();
  FloorplanParams params;
  params.jitter_rel = 0.05;
  params.jitter_seed = 42;
  const RCNetwork a = ThermalModel::build_network(
      Floorplan::for_platform(platform, params), cooling);
  const RCNetwork b = ThermalModel::build_network(
      Floorplan::for_platform(platform, params), cooling);

  const double dt = 0.01;
  const auto p1 = ThermalPropagator::shared(a, dt);
  const auto p2 = ThermalPropagator::shared(b, dt);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(ThermalPropagator::shared_cache_size(), 1u);

  FloorplanParams reseeded = params;
  reseeded.jitter_seed = 43;
  const RCNetwork c = ThermalModel::build_network(
      Floorplan::for_platform(platform, reseeded), cooling);
  const auto p3 = ThermalPropagator::shared(c, dt);
  EXPECT_NE(p1.get(), p3.get());

  FloorplanParams amplified = params;
  amplified.jitter_rel = 0.10;
  const RCNetwork d = ThermalModel::build_network(
      Floorplan::for_platform(platform, amplified), cooling);
  const auto p4 = ThermalPropagator::shared(d, dt);
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_NE(p3.get(), p4.get());
  EXPECT_EQ(ThermalPropagator::shared_cache_size(), 3u);
  ThermalPropagator::clear_shared_cache();
}

// step_batched on a grid-refined floorplan — wide slabs where most power
// rows are zero, exactly the layout the fleet engine runs — must match
// per-lane scalar stepping bit for bit. Adversarial lanes included: a
// power entry of -0.0 and a below-zero ambient each disable the kernel's
// zero-row fast path, which must never change a single bit either way.
TEST(ThermalPropagator, BatchedStepBitIdenticalToScalarOnGridNetwork) {
  const PlatformSpec platform = PlatformSpec::hikey970();
  FloorplanParams params;
  params.package_grid = 6;  // 36 spreader cells + 13 classic nodes
  const Floorplan fp = Floorplan::for_platform(platform, params);
  const RCNetwork net = ThermalModel::build_network(fp, CoolingConfig::fan());
  const std::size_t n = net.num_nodes();
  const ThermalPropagator prop(net, 0.01);
  constexpr int kSteps = 50;

  Rng rng(2024);
  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::vector<double> temps(n * lanes);
    std::vector<double> power(n * lanes, 0.0);
    std::vector<double> ambient(lanes);
    for (std::size_t s = 0; s < lanes; ++s) {
      ambient[s] = rng.uniform(20.0, 30.0);
      for (std::size_t i = 0; i < n; ++i) {
        temps[i * lanes + s] = rng.uniform(25.0, 80.0);
      }
      // Only heat-input rows carry power, like the fleet slabs.
      for (const std::size_t node : fp.core_nodes) {
        power[node * lanes + s] = rng.uniform(0.0, 3.0);
      }
      power[fp.npu_node * lanes + s] = rng.uniform(0.0, 2.0);
    }
    if (lanes >= 7) {
      power[fp.core_nodes[0] * lanes + 1] = -0.0;  // bitwise negative zero
      ambient[2] = -5.0;  // sub-zero ambient: skip precondition fails
    }

    std::vector<double> batched = temps;
    ThermalPropagator::BatchWorkspace bws;
    for (int t = 0; t < kSteps; ++t) {
      prop.step_batched(batched, power, ambient, lanes, bws);
    }

    ThermalPropagator::Workspace ws;
    for (std::size_t s = 0; s < lanes; ++s) {
      std::vector<double> lane_t(n);
      std::vector<double> lane_p(n);
      for (std::size_t i = 0; i < n; ++i) {
        lane_t[i] = temps[i * lanes + s];
        lane_p[i] = power[i * lanes + s];
      }
      for (int t = 0; t < kSteps; ++t) {
        prop.step(lane_t, lane_p, ambient[s], ws);
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(lane_t[i], batched[i * lanes + s])
            << "width " << lanes << " lane " << s << " node " << i;
      }
    }
  }
}

// The factored solver must reproduce the historical per-call elimination
// bit for bit — same pivots, same arithmetic sequence.
TEST(SteadyStateSolver, BitIdenticalToRcNetworkSteadyState) {
  const RCNetwork net = three_node_net();
  const SteadyStateSolver solver(net);

  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> power(3);
    for (double& p : power) p = rng.uniform(0.0, 5.0);
    const double ambient = rng.uniform(20.0, 35.0);
    const auto reference = net.steady_state(power, ambient);
    const auto factored = solver.solve(power, ambient);
    ASSERT_EQ(reference.size(), factored.size());
    for (std::size_t n = 0; n < reference.size(); ++n) {
      ASSERT_EQ(reference[n], factored[n])
          << "trial " << trial << " node " << n;
    }
  }
}

TEST(SteadyStateSolver, DiagFeedbackSolvesCoupledSystem) {
  const RCNetwork net = three_node_net();
  const std::vector<double> kappa = {0.02, 0.01, 0.0};
  const SteadyStateSolver solver(net, kappa);

  const std::vector<double> power = {1.5, 0.3, 0.0};
  const double ambient = 25.0;
  const auto temps = solver.solve(power, ambient);

  // Residual check: L*T - kappa.*T == P + Gamb*ambient.
  const auto& g = net.conductance_matrix();
  const auto& row_sum = net.laplacian_row_sums();
  const auto& g_amb = net.ambient_conductances();
  for (std::size_t i = 0; i < 3; ++i) {
    double lhs = (row_sum[i] - kappa[i]) * temps[i];
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) lhs -= g[i * 3 + j] * temps[j];
    }
    EXPECT_NEAR(lhs, power[i] + g_amb[i] * ambient, 1e-9) << "node " << i;
  }
  // Positive feedback raises temperatures above the uncoupled solution.
  const auto uncoupled = net.steady_state(power, ambient);
  EXPECT_GT(temps[0], uncoupled[0]);
}

TEST(SteadyStateSolver, RefusesFloatingNetwork) {
  RCNetwork net({1.0, 3.0}, {0.0, 0.0});
  net.add_conductance(0, 1, 1.0);
  EXPECT_THROW(SteadyStateSolver{net}, InvalidArgument);
}

// Satellite regression: a fixed topology stepped many times must run the
// O(n) stability scan exactly once; topology changes invalidate the cache.
TEST(RCNetworkStableDt, ScanRunsOncePerTopology) {
  RCNetwork net = three_node_net();
  EXPECT_EQ(net.stable_dt_scan_count(), 0u);

  std::vector<double> temps(3, 25.0);
  const std::vector<double> power = {1.5, 0.3, 0.0};
  RCNetwork::StepWorkspace ws;
  for (int i = 0; i < 10000; ++i) {
    net.step(temps, power, 25.0, 0.01, ws);
  }
  EXPECT_EQ(net.stable_dt_scan_count(), 1u);

  net.add_conductance(0, 2, 0.1);  // invalidates the cached bound
  net.step(temps, power, 25.0, 0.01, ws);
  net.step(temps, power, 25.0, 0.01, ws);
  EXPECT_EQ(net.stable_dt_scan_count(), 2u);
}

TEST(RCNetworkStableDt, CachedValueMatchesFreshScan) {
  RCNetwork net = three_node_net();
  const double before = net.max_stable_dt();
  RCNetwork fresh = three_node_net();
  EXPECT_DOUBLE_EQ(before, fresh.max_stable_dt());
  // And the cache returns the same value on repeated queries.
  EXPECT_DOUBLE_EQ(net.max_stable_dt(), before);
}

TEST(RCNetworkHash, StructuralHashDistinguishesTopologies) {
  const RCNetwork a = three_node_net();
  const RCNetwork b = three_node_net();
  EXPECT_EQ(a.structural_hash(), b.structural_hash());

  RCNetwork c = three_node_net();
  c.add_conductance(0, 2, 0.5);
  EXPECT_NE(a.structural_hash(), c.structural_hash());

  RCNetwork d({0.6, 2.0, 20.0}, {0.0, 0.0, 0.13});  // different cooling
  d.add_conductance(0, 1, 2.0);
  d.add_conductance(1, 2, 3.0);
  EXPECT_NE(a.structural_hash(), d.structural_hash());
}

}  // namespace
}  // namespace topil
