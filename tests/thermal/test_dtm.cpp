#include "thermal/dtm.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

class DtmTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  Dtm::Config config_{};  // trip 80, release 73, period 0.1
  std::size_t little_top_ =
      platform_.cluster(kLittleCluster).vf.num_levels() - 1;
  std::size_t big_top_ = platform_.cluster(kBigCluster).vf.num_levels() - 1;
};

TEST_F(DtmTest, NoThrottlingWhenCool) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 50.0);
  EXPECT_FALSE(dtm.throttling());
  EXPECT_EQ(dtm.clamp(kBigCluster, big_top_), big_top_);
  EXPECT_EQ(dtm.cap(kLittleCluster), little_top_);
}

TEST_F(DtmTest, StepsDownOneLevelPerPeriodAboveTrip) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 90.0);
  EXPECT_TRUE(dtm.throttling());
  EXPECT_EQ(dtm.cap(kBigCluster), big_top_ - 1);
  // Within the same period nothing more happens.
  dtm.update(0.05, 95.0);
  EXPECT_EQ(dtm.cap(kBigCluster), big_top_ - 1);
  // Next period: one more step.
  dtm.update(0.1, 95.0);
  EXPECT_EQ(dtm.cap(kBigCluster), big_top_ - 2);
  EXPECT_EQ(dtm.throttle_events(), 2u);
}

TEST_F(DtmTest, ClampLimitsRequests) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 90.0);
  EXPECT_EQ(dtm.clamp(kBigCluster, big_top_), big_top_ - 1);
  EXPECT_EQ(dtm.clamp(kBigCluster, 0), 0u);  // lower requests untouched
}

TEST_F(DtmTest, CapNeverGoesBelowZero) {
  Dtm dtm(platform_, config_);
  for (int i = 0; i < 50; ++i) {
    dtm.update(i * config_.period_s, 120.0);
  }
  EXPECT_EQ(dtm.cap(kBigCluster), 0u);
  EXPECT_EQ(dtm.cap(kLittleCluster), 0u);
}

TEST_F(DtmTest, RecoversAfterCooling) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 95.0);
  dtm.update(0.1, 95.0);
  EXPECT_TRUE(dtm.throttling());
  // Cool below the release point: caps relax one step per period.
  double t = 0.2;
  while (dtm.throttling()) {
    dtm.update(t, 60.0);
    t += config_.period_s;
    ASSERT_LT(t, 10.0) << "DTM failed to recover";
  }
  EXPECT_EQ(dtm.cap(kBigCluster), big_top_);
  EXPECT_EQ(dtm.cap(kLittleCluster), little_top_);
}

TEST_F(DtmTest, HysteresisBandHolds) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 90.0);
  const std::size_t cap = dtm.cap(kBigCluster);
  // Between release (73) and trip (80): no changes either way.
  dtm.update(0.1, 75.0);
  dtm.update(0.2, 78.0);
  EXPECT_EQ(dtm.cap(kBigCluster), cap);
  EXPECT_TRUE(dtm.throttling());
}

TEST_F(DtmTest, ResetRestoresFullRange) {
  Dtm dtm(platform_, config_);
  dtm.update(0.0, 95.0);
  dtm.reset();
  EXPECT_FALSE(dtm.throttling());
  EXPECT_EQ(dtm.cap(kBigCluster), big_top_);
  EXPECT_EQ(dtm.throttle_events(), 0u);
}

TEST_F(DtmTest, ValidatesConfig) {
  Dtm::Config bad;
  bad.release_c = 90.0;
  bad.trip_c = 85.0;
  EXPECT_THROW(Dtm(platform_, bad), InvalidArgument);
  bad = Dtm::Config{};
  bad.period_s = 0.0;
  EXPECT_THROW(Dtm(platform_, bad), InvalidArgument);
}

}  // namespace
}  // namespace topil
