#include "thermal/thermal_model.hpp"

#include <gtest/gtest.h>

namespace topil {
namespace {

class ThermalModelTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  Floorplan floorplan_ = Floorplan::for_platform(platform_);
  PowerModel power_model_{platform_};

  PowerBreakdown power_for(std::vector<double> activity,
                           std::vector<std::size_t> levels,
                           double temp = 45.0) const {
    return power_model_.compute(
        levels, activity, std::vector<double>(8, temp), false);
  }
};

TEST_F(ThermalModelTest, StartsAtAmbientAndResets) {
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_DOUBLE_EQ(tm.core_temp_c(c), 25.0);
  }
  PowerBreakdown p = power_for(std::vector<double>(8, 1.0), {8, 8});
  tm.step(p, 10.0);
  EXPECT_GT(tm.max_core_temp_c(), 25.0);
  tm.reset();
  EXPECT_DOUBLE_EQ(tm.max_core_temp_c(), 25.0);
}

TEST_F(ThermalModelTest, HotspotAtTheActiveCore) {
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  std::vector<double> activity(8, 0.0);
  activity[6] = 1.0;  // one busy big core
  tm.settle(power_for(activity, {0, 8}));
  const double hot = tm.core_temp_c(6);
  for (CoreId c = 0; c < 8; ++c) {
    if (c != 6) {
      EXPECT_LT(tm.core_temp_c(c), hot) << "core " << c;
    }
  }
  EXPECT_DOUBLE_EQ(tm.max_core_temp_c(), hot);
}

TEST_F(ThermalModelTest, HeatSpreadsToNeighbours) {
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  std::vector<double> activity(8, 0.0);
  activity[5] = 1.0;
  tm.settle(power_for(activity, {0, 8}));
  // The neighbouring big core is warmer than a LITTLE core across the die.
  EXPECT_GT(tm.core_temp_c(6), tm.core_temp_c(0));
  // And the big-cluster node is warmer than the LITTLE-cluster node.
  EXPECT_GT(tm.cluster_temp_c(kBigCluster),
            tm.cluster_temp_c(kLittleCluster));
}

TEST_F(ThermalModelTest, NoFanRunsHotterThanFan) {
  ThermalModel fan(platform_, floorplan_, CoolingConfig::fan());
  ThermalModel nofan(platform_, floorplan_, CoolingConfig::no_fan());
  const PowerBreakdown p = power_for(std::vector<double>(8, 1.0), {8, 8});
  fan.settle(p);
  nofan.settle(p);
  EXPECT_GT(nofan.max_core_temp_c(), fan.max_core_temp_c() + 5.0);
}

TEST_F(ThermalModelTest, FullLoadSteadyStateInRealisticRange) {
  // Everything at peak with a fan: hot but below silicon limits; this pins
  // the calibration used throughout the evaluation.
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  std::vector<std::size_t> top = {
      platform_.cluster(kLittleCluster).vf.num_levels() - 1,
      platform_.cluster(kBigCluster).vf.num_levels() - 1};
  tm.settle(power_for(std::vector<double>(8, 1.0), top, 70.0));
  EXPECT_GT(tm.max_core_temp_c(), 55.0);
  EXPECT_LT(tm.max_core_temp_c(), 95.0);
}

TEST_F(ThermalModelTest, IdleChipStaysNearAmbient) {
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  tm.settle(power_for(std::vector<double>(8, 0.0), {0, 0}, 25.0));
  EXPECT_LT(tm.max_core_temp_c(), 32.0);
}

TEST_F(ThermalModelTest, TransientApproachesSettledState) {
  ThermalModel transient(platform_, floorplan_, CoolingConfig::fan());
  ThermalModel settled(platform_, floorplan_, CoolingConfig::fan());
  const PowerBreakdown p = power_for(std::vector<double>(8, 0.8), {5, 5});
  settled.settle(p);
  for (int i = 0; i < 6000; ++i) transient.step(p, 1.0);  // 100 min
  EXPECT_NEAR(transient.max_core_temp_c(), settled.max_core_temp_c(), 0.05);
}

TEST_F(ThermalModelTest, HeatCapacityDelaysResponse) {
  // After a short burst the core is far from its steady-state temperature —
  // the temporal effect that distinguishes thermal from power optimization.
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  const PowerBreakdown p = power_for(std::vector<double>(8, 1.0), {8, 8});
  ThermalModel settled(platform_, floorplan_, CoolingConfig::fan());
  settled.settle(p);
  tm.step(p, 1.0);
  EXPECT_LT(tm.max_core_temp_c(),
            25.0 + 0.5 * (settled.max_core_temp_c() - 25.0));
}

TEST_F(ThermalModelTest, SteadyStateIsSideEffectFree) {
  ThermalModel tm(platform_, floorplan_, CoolingConfig::fan());
  const PowerBreakdown p = power_for(std::vector<double>(8, 1.0), {8, 8});
  const auto t = tm.steady_state(p);
  EXPECT_GT(t[floorplan_.core_nodes[4]], 30.0);
  EXPECT_DOUBLE_EQ(tm.max_core_temp_c(), 25.0);  // unchanged
}

TEST(CoolingConfig, PresetsAreOrdered) {
  EXPECT_GT(CoolingConfig::fan().heatsink_to_ambient_g,
            CoolingConfig::no_fan().heatsink_to_ambient_g);
  EXPECT_EQ(CoolingConfig::fan().name, "fan");
  EXPECT_EQ(CoolingConfig::no_fan().name, "no-fan");
}

}  // namespace
}  // namespace topil
