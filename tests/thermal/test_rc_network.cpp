#include "thermal/rc_network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace topil {
namespace {

// Single node with capacitance C and ambient conductance G: a first-order
// low-pass with tau = C/G and steady state T_amb + P/G.
TEST(RCNetwork, SingleNodeStepResponseMatchesAnalyticSolution) {
  const double c = 2.0;
  const double g = 0.5;
  RCNetwork net({c}, {g});
  std::vector<double> temps = {25.0};
  const std::vector<double> power = {1.0};

  const double tau = c / g;
  const double target = 25.0 + 1.0 / g;
  net.step(temps, power, 25.0, tau);  // one time constant
  const double expected = target + (25.0 - target) * std::exp(-1.0);
  EXPECT_NEAR(temps[0], expected, 0.05);

  net.step(temps, power, 25.0, 20.0 * tau);
  EXPECT_NEAR(temps[0], target, 1e-6);
}

TEST(RCNetwork, SteadyStateSingleNode) {
  RCNetwork net({1.0}, {0.25});
  const auto t = net.steady_state({2.0}, 30.0);
  EXPECT_NEAR(t[0], 30.0 + 2.0 / 0.25, 1e-9);
}

TEST(RCNetwork, TwoNodeSteadyStateMatchesHandSolution) {
  // node0 -- g01 -- node1 -- gamb -- ambient; power only into node0.
  RCNetwork net({1.0, 1.0}, {0.0, 0.5});
  net.add_conductance(0, 1, 2.0);
  const auto t = net.steady_state({1.0, 0.0}, 20.0);
  // All heat flows through both conductances: T1 = 20 + 1/0.5 = 22,
  // T0 = T1 + 1/2 = 22.5.
  EXPECT_NEAR(t[1], 22.0, 1e-9);
  EXPECT_NEAR(t[0], 22.5, 1e-9);
}

TEST(RCNetwork, WorkspaceStepMatchesConvenienceStepBitForBit) {
  RCNetwork net({0.6, 2.0, 20.0}, {0.0, 0.0, 0.25});
  net.add_conductance(0, 1, 2.0);
  net.add_conductance(1, 2, 3.0);
  const std::vector<double> power = {1.5, 0.3, 0.0};

  std::vector<double> plain(3, 25.0);
  std::vector<double> with_ws(3, 25.0);
  RCNetwork::StepWorkspace ws;
  for (int i = 0; i < 50; ++i) {
    net.step(plain, power, 25.0, 0.4);
    net.step(with_ws, power, 25.0, 0.4, ws);
    for (std::size_t n = 0; n < 3; ++n) {
      ASSERT_EQ(plain[n], with_ws[n]) << "step " << i << " node " << n;
    }
  }
}

TEST(RCNetwork, TransientConvergesToSteadyState) {
  RCNetwork net({0.6, 2.0, 20.0}, {0.0, 0.0, 0.25});
  net.add_conductance(0, 1, 2.0);
  net.add_conductance(1, 2, 3.0);
  const std::vector<double> power = {1.5, 0.3, 0.0};
  const auto target = net.steady_state(power, 25.0);

  std::vector<double> temps(3, 25.0);
  net.step(temps, power, 25.0, 2000.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(temps[i], target[i], 1e-3) << "node " << i;
  }
}

TEST(RCNetwork, EnergyConservationNoAmbientPath) {
  // Two insulated nodes exchanging heat: total heat content is conserved
  // and both converge to the capacitance-weighted mean.
  RCNetwork net({1.0, 3.0}, {0.0, 0.0});
  net.add_conductance(0, 1, 1.0);
  std::vector<double> temps = {100.0, 20.0};
  const std::vector<double> power = {0.0, 0.0};
  const double heat0 = 1.0 * 100.0 + 3.0 * 20.0;
  net.step(temps, power, 25.0, 100.0);
  EXPECT_NEAR(1.0 * temps[0] + 3.0 * temps[1], heat0, 1e-6);
  EXPECT_NEAR(temps[0], temps[1], 1e-6);
  // And the floating network must refuse a steady-state solve.
  EXPECT_THROW(net.steady_state(power, 25.0), InvalidArgument);
}

TEST(RCNetwork, HigherConductanceToAmbientCools) {
  RCNetwork fan({1.0}, {0.25});
  RCNetwork nofan({1.0}, {0.15});
  EXPECT_LT(fan.steady_state({3.0}, 25.0)[0],
            nofan.steady_state({3.0}, 25.0)[0]);
}

TEST(RCNetwork, LargeStepIsSubdividedAndStable) {
  // dt far above the Euler stability limit must not explode.
  RCNetwork net({0.01}, {10.0});  // rate = 1000/s
  std::vector<double> temps = {25.0};
  net.step(temps, {1.0}, 25.0, 5.0);
  EXPECT_NEAR(temps[0], 25.1, 1e-6);
  EXPECT_TRUE(std::isfinite(temps[0]));
}

TEST(RCNetwork, ZeroDtIsNoOp) {
  RCNetwork net({1.0}, {1.0});
  std::vector<double> temps = {42.0};
  net.step(temps, {1.0}, 25.0, 0.0);
  EXPECT_DOUBLE_EQ(temps[0], 42.0);
}

TEST(RCNetwork, ConductanceAccessorsAndValidation) {
  RCNetwork net({1.0, 1.0}, {0.1, 0.0});
  net.add_conductance(0, 1, 0.7);
  net.add_conductance(0, 1, 0.3);  // parallel conductances add
  EXPECT_NEAR(net.conductance(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(net.ambient_conductance(0), 0.1, 1e-12);
  EXPECT_THROW(net.add_conductance(0, 0, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_conductance(0, 2, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_conductance(0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(RCNetwork({}, {}), InvalidArgument);
  EXPECT_THROW(RCNetwork({0.0}, {0.1}), InvalidArgument);
  EXPECT_THROW(RCNetwork({1.0}, {-0.1}), InvalidArgument);
}

// Property sweep: steady state is linear in power (superposition holds).
class RcSuperposition : public ::testing::TestWithParam<double> {};

TEST_P(RcSuperposition, SteadyStateLinearInPower) {
  RCNetwork net({1.0, 2.0}, {0.0, 0.4});
  net.add_conductance(0, 1, 1.5);
  const double scale = GetParam();
  const auto base = net.steady_state({1.0, 0.5}, 0.0);
  const auto scaled = net.steady_state({scale, 0.5 * scale}, 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(scaled[i], base[i] * scale, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, RcSuperposition,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace topil
