#include "governors/toprl_governor.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"

namespace topil {
namespace {

class TopRlGovernorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);

  void run(Governor& governor, SystemSim& sim, double duration) {
    const double end = sim.now() + duration;
    while (sim.now() < end) {
      governor.tick(sim);
      sim.step();
    }
  }
};

TEST_F(TopRlGovernorTest, FreshTableHasPaperScale) {
  TopRlGovernor governor(platform_);
  EXPECT_EQ(governor.table().num_entries(), 2304u);
  EXPECT_EQ(governor.name(), "TOP-RL");
}

TEST_F(TopRlGovernorTest, ExecutesAtMostOneMigrationPerEpoch) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopRlGovernor::Config config;
  config.learning_enabled = true;
  config.seed = 3;
  TopRlGovernor governor(platform_, config);
  governor.reset(sim);
  for (CoreId c = 0; c < 4; ++c) sim.spawn(app_, 1e8, c);
  run(governor, sim, 0.55);
  EXPECT_LE(governor.migrations_executed(), 1u);
}

TEST_F(TopRlGovernorTest, LearningUpdatesSharedTable) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopRlGovernor::Config config;
  config.learning_enabled = true;
  TopRlGovernor governor(platform_, config);
  governor.reset(sim);
  sim.spawn(app_, 1e8, 0);
  run(governor, sim, 5.0);
  // Some Q-value moved away from the constant init.
  bool changed = false;
  for (std::size_t s = 0; s < governor.table().num_states() && !changed;
       ++s) {
    for (std::size_t a = 0; a < 8; ++a) {
      if (governor.table().q(s, a) != 25.0) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST_F(TopRlGovernorTest, EvaluationModeFreezesPretrainedTable) {
  rl::QTable table(288, 8, 25.0);
  table.set_q(0, 1, 99.0);
  TopRlGovernor::Config config;
  config.learning_enabled = false;
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopRlGovernor governor(platform_, table, config);
  governor.reset(sim);
  sim.spawn(app_, 1e8, 0);
  run(governor, sim, 3.0);
  EXPECT_DOUBLE_EQ(governor.table().q(0, 1), 99.0);
  std::size_t modified = 0;
  for (std::size_t s = 0; s < 288; ++s) {
    for (std::size_t a = 0; a < 8; ++a) {
      if (s == 0 && a == 1) continue;
      if (governor.table().q(s, a) != 25.0) ++modified;
    }
  }
  EXPECT_EQ(modified, 0u);
}

TEST_F(TopRlGovernorTest, AvoidsOccupiedTargets) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopRlGovernor::Config config;
  config.learning_enabled = true;
  config.seed = 11;
  TopRlGovernor governor(platform_, config);
  governor.reset(sim);
  for (CoreId c = 0; c < 8; ++c) sim.spawn(app_, 1e8, c);
  run(governor, sim, 10.0);
  // Every core stays exclusively owned: masked actions forbid doubling up.
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_LE(sim.pids_on_core(c).size(), 1u) << "core " << c;
  }
}

TEST_F(TopRlGovernorTest, SharesDvfsControlLoopBehaviour) {
  // Freeze a table whose greedy action in every state is "stay on core 5"
  // so the test isolates the shared DVFS control loop from RL exploration.
  rl::QTable table(288, 8, 25.0);
  for (std::size_t s = 0; s < table.num_states(); ++s) {
    table.set_q(s, 5, 100.0);
  }
  TopRlGovernor::Config config;
  config.learning_enabled = false;
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopRlGovernor governor(platform_, table, config);
  governor.reset(sim);
  // cpi-1 app on big core 5 needing exactly level 3 (1.364 GHz).
  sim.spawn(make_single_phase_app("lin", 1e13, {2.0, 0.0, 0.9},
                                  {1.0, 0.0, 1.0}, 0.01, false),
            1.3e9, 5);
  run(governor, sim, 6.0);
  ASSERT_EQ(sim.num_running(), 1u);
  EXPECT_EQ(sim.process(sim.running_pids().front()).core(), 5u);
  EXPECT_LE(sim.vf_level(kBigCluster), 4u);
  EXPECT_GE(sim.vf_level(kBigCluster), 2u);
}

TEST_F(TopRlGovernorTest, ValidatesConfig) {
  TopRlGovernor::Config bad;
  bad.migration_period_s = 0.0;
  EXPECT_THROW(TopRlGovernor(platform_, bad), InvalidArgument);
  // Mismatched pre-trained table dimensions.
  rl::QTable wrong(10, 8, 0.0);
  EXPECT_THROW(TopRlGovernor(platform_, wrong), InvalidArgument);
}

}  // namespace
}  // namespace topil
