#include "governors/schedutil.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil {
namespace {

class SchedutilTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  SystemSim sim_{platform_, CoolingConfig::fan(), SimConfig{}};
  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);

  void run(FreqPolicy& policy, double duration) {
    const double end = sim_.now() + duration;
    while (sim_.now() < end) {
      policy.tick(sim_);
      sim_.step();
    }
  }
};

TEST_F(SchedutilTest, SaturatedClusterGoesToPeak) {
  SchedutilPolicy policy;
  policy.reset(sim_);
  sim_.spawn(app_, 1e8, 5);
  run(policy, 2.0);
  // util ~1 with 1.25x headroom saturates at the top level.
  EXPECT_EQ(sim_.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
}

TEST_F(SchedutilTest, IdleClusterDropsToBottom) {
  SchedutilPolicy policy;
  sim_.request_vf_level(kLittleCluster, 5);
  policy.reset(sim_);
  run(policy, 2.0);
  EXPECT_EQ(sim_.vf_level(kLittleCluster), 0u);
}

TEST_F(SchedutilTest, RateLimitHoldsBetweenChanges) {
  SchedutilPolicy::Config config;
  config.rate_limit_s = 10.0;  // effectively one change per test
  SchedutilPolicy policy(config);
  policy.reset(sim_);
  sim_.spawn(app_, 1e8, 5);
  run(policy, 0.5);
  const std::size_t level = sim_.vf_level(kBigCluster);
  // Kill the load: the rate limit forbids dropping immediately.
  for (Pid pid : sim_.running_pids()) sim_.migrate(pid, 0);
  run(policy, 0.5);
  EXPECT_EQ(sim_.vf_level(kBigCluster), level);
}

TEST_F(SchedutilTest, FactoryAndName) {
  auto governor = make_gts_schedutil();
  EXPECT_EQ(governor->name(), "GTS/schedutil");
  governor->reset(sim_);
  const CoreId core = governor->place(sim_, app_, 1e8);
  sim_.spawn(app_, 1e8, core);
  for (int i = 0; i < 100; ++i) {
    governor->tick(sim_);
    sim_.step();
  }
  EXPECT_GE(sim_.vf_level(kBigCluster), 1u);
}

TEST_F(SchedutilTest, Validation) {
  SchedutilPolicy::Config bad;
  bad.headroom = 0.5;
  EXPECT_THROW(SchedutilPolicy{bad}, InvalidArgument);
  bad = SchedutilPolicy::Config{};
  bad.period_s = 0.0;
  EXPECT_THROW(SchedutilPolicy{bad}, InvalidArgument);
}

}  // namespace
}  // namespace topil
