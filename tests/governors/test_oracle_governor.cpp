#include "governors/oracle_governor.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil {
namespace {

class OracleGovernorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  void run(Governor& governor, SystemSim& sim, double duration) {
    const double end = sim.now() + duration;
    while (sim.now() < end) {
      governor.tick(sim);
      sim.step();
    }
  }
};

TEST_F(OracleGovernorTest, MovesAdiToBigAndSeidelToLittle) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  OracleGovernor governor(platform_, CoolingConfig::fan());
  governor.reset(sim);
  const auto& db = AppDatabase::instance();
  const AppSpec& adi = db.by_name("adi");
  const AppSpec& seidel = db.by_name("seidel-2d");
  // Start both on the "wrong" cluster.
  const Pid adi_pid = sim.spawn(adi, 0.3 * adi.peak_ips(platform_), 0);
  const Pid seidel_pid =
      sim.spawn(seidel, 0.3 * seidel.peak_ips(platform_), 5);
  run(governor, sim, 5.0);
  EXPECT_EQ(platform_.cluster_of_core(sim.process(adi_pid).core()),
            kBigCluster);
  EXPECT_EQ(platform_.cluster_of_core(sim.process(seidel_pid).core()),
            kLittleCluster);
  EXPECT_GE(governor.migrations_executed(), 2u);
}

TEST_F(OracleGovernorTest, StaysPutOnceOptimal) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  OracleGovernor governor(platform_, CoolingConfig::fan());
  governor.reset(sim);
  const AppSpec& adi = AppDatabase::instance().by_name("adi");
  sim.spawn(adi, 0.3 * adi.peak_ips(platform_), 6);  // already optimal
  run(governor, sim, 4.0);
  // The soft-label hysteresis keeps the app where it is (at most an
  // initial same-rating shuffle between symmetric big cores).
  EXPECT_LE(governor.migrations_executed(), 1u);
}

TEST_F(OracleGovernorTest, NameAndValidation) {
  OracleGovernor governor(platform_, CoolingConfig::fan());
  EXPECT_EQ(governor.name(), "TOP-Oracle");
  OracleGovernor::Config bad;
  bad.migration_period_s = 0.0;
  EXPECT_THROW(OracleGovernor(platform_, CoolingConfig::fan(), bad),
               InvalidArgument);
}

}  // namespace
}  // namespace topil
