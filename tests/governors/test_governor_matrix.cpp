// A parameterized conformance suite that every governor in the repository
// must pass: it completes a small workload, keeps VF requests legal,
// never leaves a process unaccounted for, and produces sane metrics.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/training.hpp"
#include "governors/oracle_governor.hpp"
#include "governors/powersave.hpp"
#include "governors/schedutil.hpp"
#include "governors/topil_governor.hpp"
#include "governors/toprl_governor.hpp"
#include "workloads/generator.hpp"

namespace topil {
namespace {

// A trained-model-free TOP-IL stand-in (constant ratings) keeps this suite
// fast; the real trained policy is exercised by the benches.
il::IlPolicyModel flat_policy(const PlatformSpec& platform) {
  nn::Topology topo;
  topo.inputs = 21;
  topo.hidden = {8};
  topo.outputs = 8;
  nn::Mlp net(topo);
  net.load_weights(std::vector<float>(net.num_params(), 0.0f));
  return il::IlPolicyModel(std::move(net), platform);
}

std::unique_ptr<Governor> make_by_name(const std::string& name) {
  const PlatformSpec& platform = hikey970_platform();
  if (name == "gts-ondemand") return make_gts_ondemand();
  if (name == "gts-powersave") return make_gts_powersave();
  if (name == "gts-schedutil") return make_gts_schedutil();
  if (name == "topil") {
    return std::make_unique<TopIlGovernor>(flat_policy(platform));
  }
  if (name == "toprl") {
    TopRlGovernor::Config config;
    config.learning_enabled = true;
    return std::make_unique<TopRlGovernor>(platform, config);
  }
  if (name == "oracle") {
    return std::make_unique<OracleGovernor>(platform, CoolingConfig::fan());
  }
  throw InvalidArgument("unknown governor " + name);
}

class GovernorConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(GovernorConformance, CompletesWorkloadWithSaneMetrics) {
  const PlatformSpec& platform = hikey970_platform();
  WorkloadGenerator generator(platform);
  WorkloadGenerator::MixedConfig wc;
  wc.num_apps = 5;
  wc.arrival_rate_per_s = 0.1;
  wc.seed = 31;
  const Workload workload =
      generator.mixed(wc, AppDatabase::instance().training_apps());

  const auto governor = make_by_name(GetParam());
  ExperimentConfig config;
  config.cooling = CoolingConfig::fan();
  config.max_duration_s = 2400.0;
  const ExperimentResult result =
      run_experiment(platform, *governor, workload, config);

  EXPECT_EQ(result.apps_completed, workload.size());
  EXPECT_GT(result.avg_temp_c, 25.0);
  EXPECT_LT(result.peak_temp_c, 100.0);
  EXPECT_LE(result.qos_violations, result.apps_completed);
  EXPECT_GT(result.duration_s, 0.0);
  // CPU-time attribution covers a plausible share of the run.
  double busy = 0.0;
  for (const auto& per_level : result.cpu_time_s) {
    for (double t : per_level) busy += t;
  }
  EXPECT_GT(busy, 0.0);
  EXPECT_LE(busy, result.duration_s * platform.num_cores() + 1.0);
}

TEST_P(GovernorConformance, NeverDoublesUpUnderExclusiveLoad) {
  // With fewer apps than cores, no governor here should end up sharing
  // cores at steady state (GTS spreads, IL/RL/oracle mask occupied cores).
  const PlatformSpec& platform = hikey970_platform();
  SimConfig sim_config;
  sim_config.sensor.noise_stddev_c = 0.0;
  SystemSim sim(platform, CoolingConfig::fan(), sim_config);
  const auto governor = make_by_name(GetParam());
  governor->reset(sim);
  const AppSpec app = make_single_phase_app(
      "g", 1e13, {2.0, 0.1, 0.9}, {1.0, 0.05, 1.0}, 0.01, false);
  for (int i = 0; i < 4; ++i) {
    sim.spawn(app, 2e8, governor->place(sim, app, 2e8));
  }
  for (int i = 0; i < 500; ++i) {
    governor->tick(sim);
    sim.step();
  }
  for (CoreId c = 0; c < platform.num_cores(); ++c) {
    EXPECT_LE(sim.pids_on_core(c).size(), 1u) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, GovernorConformance,
                         ::testing::Values("gts-ondemand", "gts-powersave",
                                           "gts-schedutil", "topil",
                                           "toprl", "oracle"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace topil
