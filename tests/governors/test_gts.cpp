#include "governors/gts.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "governors/powersave.hpp"

namespace topil {
namespace {

class GtsTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  SystemSim sim_{platform_, CoolingConfig::fan(), SimConfig{}};
  GtsScheduler scheduler_;

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);

  void settle(double duration = 1.0) {
    const double end = sim_.now() + duration;
    while (sim_.now() < end) {
      scheduler_.tick(sim_);
      sim_.step();
    }
  }
};

TEST_F(GtsTest, PlacementPrefersEmptyBigCores) {
  scheduler_.reset(sim_);
  EXPECT_GE(scheduler_.place(sim_), 4u);  // empty big core first
  sim_.spawn(app_, 1e8, 4);
  sim_.spawn(app_, 1e8, 5);
  sim_.spawn(app_, 1e8, 6);
  sim_.spawn(app_, 1e8, 7);
  // Big cluster full: spill to an empty LITTLE core.
  EXPECT_LT(scheduler_.place(sim_), 4u);
  for (CoreId c = 0; c < 4; ++c) sim_.spawn(app_, 1e8, c);
  // Everything occupied: least-loaded big core.
  EXPECT_GE(scheduler_.place(sim_), 4u);
}

TEST_F(GtsTest, SpreadsOverloadedCoresToEmptyOnes) {
  scheduler_.reset(sim_);
  // Three tasks piled on one big core, everything else empty.
  sim_.spawn(app_, 1e8, 4);
  sim_.spawn(app_, 1e8, 4);
  sim_.spawn(app_, 1e8, 4);
  settle(0.5);
  // Each task ends up alone on a big core.
  std::size_t busy_big = 0;
  for (CoreId c = 4; c < 8; ++c) {
    EXPECT_LE(sim_.pids_on_core(c).size(), 1u);
    busy_big += sim_.pids_on_core(c).size();
  }
  EXPECT_EQ(busy_big, 3u);
}

TEST_F(GtsTest, UpMigratesHungryTaskFromLittleToBig) {
  scheduler_.reset(sim_);
  const Pid pid = sim_.spawn(app_, 1e8, 1);  // lone task on LITTLE
  settle(1.0);
  EXPECT_GE(sim_.process(pid).core(), 4u);
}

TEST_F(GtsTest, SpillsToLittleWhenBigSaturated) {
  scheduler_.reset(sim_);
  for (int i = 0; i < 6; ++i) sim_.spawn(app_, 1e8, 4);
  settle(1.5);
  // Six hungry tasks on a 4+4 chip: four on big, two spilled to LITTLE,
  // nobody sharing a core.
  std::size_t big = 0;
  std::size_t little = 0;
  for (CoreId c = 0; c < 8; ++c) {
    const std::size_t n = sim_.pids_on_core(c).size();
    EXPECT_LE(n, 1u) << "core " << c;
    (c < 4 ? little : big) += n;
  }
  EXPECT_EQ(big, 4u);
  EXPECT_EQ(little, 2u);
}

TEST_F(GtsTest, GovernorComposesSchedulerAndFreqPolicy) {
  auto governor = make_gts_ondemand();
  EXPECT_EQ(governor->name(), "GTS/ondemand");
  auto ps = make_gts_powersave();
  EXPECT_EQ(ps->name(), "GTS/powersave");
  governor->reset(sim_);
  const CoreId core = governor->place(sim_, app_, 1e8);
  EXPECT_GE(core, 4u);
  sim_.spawn(app_, 1e8, core);
  for (int i = 0; i < 100; ++i) {
    governor->tick(sim_);
    sim_.step();
  }
  EXPECT_EQ(sim_.num_running(), 1u);
}

TEST_F(GtsTest, NullFreqPolicyRejected) {
  EXPECT_THROW(GtsGovernor(nullptr), InvalidArgument);
}

}  // namespace
}  // namespace topil
