#include "governors/dvfs_control.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "common/error.hpp"

namespace topil {
namespace {

class DvfsControlTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  // cpi 1 on big, cpi 2 on LITTLE, no memory component: IPS == f/cpi.
  AppSpec linear_app() const {
    return make_single_phase_app("lin", 1e13, {2.0, 0.0, 0.9},
                                 {1.0, 0.0, 1.0}, 0.01, false);
  }

  void run_loop(SystemSim& sim, DvfsControlLoop& loop, double duration) {
    const double end = sim.now() + duration;
    while (sim.now() < end) {
      loop.tick(sim);
      sim.step();
    }
  }
};

TEST_F(DvfsControlTest, ConvergesToMinimumSufficientLevel) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  // Target 1.3 GIPS on big (cpi 1): needs 1.364 GHz = level 3 exactly.
  sim.spawn(linear_app(), 1.3e9, 5);
  run_loop(sim, loop, 5.0);
  EXPECT_EQ(sim.vf_level(kBigCluster), 3u);
  // Idle LITTLE cluster parked at the lowest level.
  EXPECT_EQ(sim.vf_level(kLittleCluster), 0u);
}

TEST_F(DvfsControlTest, StepsDownWhenTargetIsEasy) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  sim.request_vf_level(kBigCluster,
                       platform_.cluster(kBigCluster).vf.num_levels() - 1);
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 0.5e9, 5);  // needs only 0.682 GHz (level 0)
  run_loop(sim, loop, 5.0);
  EXPECT_EQ(sim.vf_level(kBigCluster), 0u);
}

TEST_F(DvfsControlTest, MaxAcrossApplicationsOnCluster) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 0.5e9, 4);   // easy
  sim.spawn(linear_app(), 1.9e9, 6);   // needs 2.060 GHz = level 7
  run_loop(sim, loop, 6.0);
  EXPECT_EQ(sim.vf_level(kBigCluster), 7u);
}

TEST_F(DvfsControlTest, UnattainableTargetSaturatesAtPeak) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 9e9, 5);  // impossible
  run_loop(sim, loop, 5.0);
  EXPECT_EQ(sim.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
}

TEST_F(DvfsControlTest, MovesOneStepPerPeriod) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 2.2e9, 5);  // demands the top level
  // Invocations at t = 0, 50, 100, 150 ms: at most 4 single-step moves.
  run_loop(sim, loop, 0.16);
  EXPECT_LE(sim.vf_level(kBigCluster), 4u);
  EXPECT_GE(sim.vf_level(kBigCluster), 2u);
}

TEST_F(DvfsControlTest, SkipsIterationsAfterMigration) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 2.2e9, 5);
  run_loop(sim, loop, 0.06);  // one iteration happened
  const std::size_t level = sim.vf_level(kBigCluster);
  loop.notify_migration();
  // Two skipped iterations: level unchanged for ~100 ms.
  run_loop(sim, loop, 0.1);
  EXPECT_EQ(sim.vf_level(kBigCluster), level);
  run_loop(sim, loop, 0.2);
  EXPECT_GT(sim.vf_level(kBigCluster), level);
}

TEST_F(DvfsControlTest, ChargesPerfReadOverhead) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop loop;
  loop.reset(sim);
  sim.spawn(linear_app(), 1e9, 5);
  run_loop(sim, loop, 1.0);
  // ~20 invocations/second (50 ms period), each charging a perf read.
  const double overhead = sim.metrics().overhead_s("dvfs");
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.01);
}

TEST_F(DvfsControlTest, JumpToTargetReachesLevelInOnePeriod) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  DvfsControlLoop::Config config;
  config.step_policy = DvfsControlLoop::StepPolicy::kJumpToTarget;
  DvfsControlLoop loop(config);
  loop.reset(sim);
  sim.spawn(linear_app(), 2.2e9, 5);  // demands the top level
  // One invocation at t=0 plus one with fresh measurements suffices.
  run_loop(sim, loop, 0.12);
  EXPECT_EQ(sim.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
}

TEST_F(DvfsControlTest, ValidatesConfig) {
  DvfsControlLoop::Config bad;
  bad.period_s = 0.0;
  EXPECT_THROW(DvfsControlLoop{bad}, InvalidArgument);
}

}  // namespace
}  // namespace topil
