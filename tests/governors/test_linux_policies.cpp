#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "governors/ondemand.hpp"
#include "governors/powersave.hpp"

namespace topil {
namespace {

class LinuxPoliciesTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();
  SystemSim sim_{platform_, CoolingConfig::fan(), SimConfig{}};

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);

  template <typename Policy>
  void run(Policy& policy, double duration) {
    const double end = sim_.now() + duration;
    while (sim_.now() < end) {
      policy.tick(sim_);
      sim_.step();
    }
  }
};

TEST_F(LinuxPoliciesTest, OndemandJumpsToPeakUnderLoad) {
  OndemandPolicy policy;
  policy.reset(sim_);
  sim_.spawn(app_, 1e8, 5);
  run(policy, 1.0);
  EXPECT_EQ(sim_.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
  // The idle LITTLE cluster is not ramped up.
  EXPECT_EQ(sim_.vf_level(kLittleCluster), 0u);
}

TEST_F(LinuxPoliciesTest, OndemandStepsDownWhenIdle) {
  OndemandPolicy policy;
  policy.reset(sim_);
  sim_.request_vf_level(kBigCluster,
                        platform_.cluster(kBigCluster).vf.num_levels() - 1);
  run(policy, 3.0);  // no load at all
  EXPECT_EQ(sim_.vf_level(kBigCluster), 0u);
}

TEST_F(LinuxPoliciesTest, OndemandIgnoresQosTargets) {
  // A trivially easy QoS target still gets the peak level: ondemand only
  // sees utilization, which is what the paper criticizes.
  OndemandPolicy policy;
  policy.reset(sim_);
  sim_.spawn(app_, 1e3, 5);
  run(policy, 1.0);
  EXPECT_EQ(sim_.vf_level(kBigCluster),
            platform_.cluster(kBigCluster).vf.num_levels() - 1);
}

TEST_F(LinuxPoliciesTest, PowersavePinsLowestLevel) {
  PowersavePolicy policy;
  sim_.request_vf_level(kBigCluster, 5);
  sim_.request_vf_level(kLittleCluster, 5);
  policy.reset(sim_);
  EXPECT_EQ(sim_.vf_level(kBigCluster), 0u);
  EXPECT_EQ(sim_.vf_level(kLittleCluster), 0u);
  sim_.spawn(app_, 1e9, 5);
  run(policy, 1.0);
  EXPECT_EQ(sim_.vf_level(kBigCluster), 0u);
}

TEST_F(LinuxPoliciesTest, PowersaveRunsCoolerThanOndemand) {
  AppSpec heavy = app_;
  SystemSim hot(platform_, CoolingConfig::fan(), SimConfig{});
  OndemandPolicy ondemand;
  ondemand.reset(hot);
  for (CoreId c = 4; c < 8; ++c) hot.spawn(heavy, 1e8, c);
  for (int i = 0; i < 6000; ++i) {
    ondemand.tick(hot);
    hot.step();
  }

  SystemSim cool(platform_, CoolingConfig::fan(), SimConfig{});
  PowersavePolicy powersave;
  powersave.reset(cool);
  for (CoreId c = 4; c < 8; ++c) cool.spawn(heavy, 1e8, c);
  for (int i = 0; i < 6000; ++i) {
    powersave.tick(cool);
    cool.step();
  }
  EXPECT_LT(cool.thermal().max_core_temp_c(),
            hot.thermal().max_core_temp_c() - 5.0);
}

TEST_F(LinuxPoliciesTest, OndemandValidatesConfig) {
  OndemandPolicy::Config bad;
  bad.up_threshold = 0.2;
  bad.down_threshold = 0.5;
  EXPECT_THROW(OndemandPolicy{bad}, InvalidArgument);
}

}  // namespace
}  // namespace topil
