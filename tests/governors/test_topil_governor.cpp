#include "governors/topil_governor.hpp"

#include <gtest/gtest.h>

#include "apps/app_database.hpp"
#include "validate/invariant_checker.hpp"

namespace topil {
namespace {

// A policy network with zero weights and hand-set output biases produces a
// constant per-core rating, which makes the governor's mechanics (batched
// NPU inference, masking, Eq. 5 selection, DVFS integration) fully
// predictable without training a real model.
il::IlPolicyModel constant_policy(const PlatformSpec& platform,
                                  const std::vector<float>& core_ratings) {
  nn::Topology topo;
  topo.inputs = 21;
  topo.hidden = {8};
  topo.outputs = 8;
  nn::Mlp net(topo);
  std::vector<float> weights(net.num_params(), 0.0f);
  net.load_weights(weights);
  net.layers().back().bias() =
      std::vector<float>(core_ratings.begin(), core_ratings.end());
  return il::IlPolicyModel(std::move(net), platform);
}

class TopIlGovernorTest : public ::testing::Test {
 protected:
  PlatformSpec platform_ = PlatformSpec::hikey970();

  SimConfig quiet() const {
    SimConfig c;
    c.sensor.noise_stddev_c = 0.0;
    return c;
  }

  AppSpec app_ = make_single_phase_app("a", 1e13, {2.0, 0.1, 0.9},
                                       {1.0, 0.05, 1.0}, 0.01, false);

  void run(Governor& governor, SystemSim& sim, double duration) {
    const double end = sim.now() + duration;
    while (sim.now() < end) {
      governor.tick(sim);
      sim.step();
    }
  }
};

TEST_F(TopIlGovernorTest, MigratesTowardHighestRatedCore) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}));
  governor.reset(sim);
  const Pid pid = sim.spawn(app_, 1e8, 0);
  run(governor, sim, 2.0);
  EXPECT_EQ(sim.process(pid).core(), 7u);
  EXPECT_GE(governor.migrations_executed(), 1u);
}

TEST_F(TopIlGovernorTest, OnlyOneMigrationPerEpoch) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 1, 1, 1, 1}));
  governor.reset(sim);
  for (CoreId c = 0; c < 3; ++c) sim.spawn(app_, 1e8, c);
  // After the first epoch (500 ms + NPU latency) exactly one migration.
  run(governor, sim, 0.6);
  EXPECT_EQ(governor.migrations_executed(), 1u);
  // Eventually all three land on big cores, one each.
  run(governor, sim, 3.0);
  for (CoreId c = 4; c < 8; ++c) {
    EXPECT_LE(sim.pids_on_core(c).size(), 1u);
  }
  std::size_t on_big = 0;
  for (Pid pid : sim.running_pids()) {
    on_big += sim.process(pid).core() >= 4 ? 1 : 0;
  }
  EXPECT_EQ(on_big, 3u);
}

TEST_F(TopIlGovernorTest, DoesNotMigrateOntoOccupiedCores) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}));
  governor.reset(sim);
  const Pid blocker = sim.spawn(app_, 1e8, 7);
  const Pid other = sim.spawn(app_, 1e8, 0);
  run(governor, sim, 2.0);
  EXPECT_EQ(sim.process(blocker).core(), 7u);
  EXPECT_EQ(sim.process(other).core(), 0u);  // masked: stays put
}

TEST_F(TopIlGovernorTest, HysteresisSuppressesTinyImprovements) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor::Config config;
  config.min_improvement = 0.1;
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0.05f, 0, 0, 0, 0, 0, 0}), config);
  governor.reset(sim);
  const Pid pid = sim.spawn(app_, 1e8, 0);
  run(governor, sim, 2.0);
  EXPECT_EQ(sim.process(pid).core(), 0u);
  EXPECT_EQ(governor.migrations_executed(), 0u);
}

TEST_F(TopIlGovernorTest, NpuPathMarksDeviceBusyAndDefersDecision) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}));
  governor.reset(sim);
  sim.spawn(app_, 1e8, 0);
  // Reach the first migration epoch (t = 0.5 s) without ticking past it.
  while (sim.now() + 1e-9 < 0.5) {
    governor.tick(sim);
    sim.step();
  }
  // The epoch tick submits the batch: the NPU is busy, no decision yet.
  governor.tick(sim);
  EXPECT_TRUE(sim.npu_active());
  EXPECT_EQ(governor.migrations_executed(), 0u);
  // The non-blocking result is applied on a later tick.
  sim.step();
  governor.tick(sim);
  EXPECT_EQ(governor.migrations_executed(), 1u);
}

TEST_F(TopIlGovernorTest, CpuFallbackAlsoWorksAndCostsMore) {
  SimConfig config = quiet();
  SystemSim npu_sim(platform_, CoolingConfig::fan(), config);
  SystemSim cpu_sim(platform_, CoolingConfig::fan(), config);

  TopIlGovernor::Config npu_cfg;
  npu_cfg.use_npu = true;
  TopIlGovernor::Config cpu_cfg;
  cpu_cfg.use_npu = false;
  TopIlGovernor npu_gov(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}), npu_cfg);
  TopIlGovernor cpu_gov(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}), cpu_cfg);
  npu_gov.reset(npu_sim);
  cpu_gov.reset(cpu_sim);
  const Pid a = npu_sim.spawn(app_, 1e8, 0);
  const Pid b = cpu_sim.spawn(app_, 1e8, 0);
  run(npu_gov, npu_sim, 2.0);
  run(cpu_gov, cpu_sim, 2.0);
  EXPECT_EQ(npu_sim.process(a).core(), 7u);
  EXPECT_EQ(cpu_sim.process(b).core(), 7u);
  EXPECT_GT(cpu_sim.metrics().overhead_s("migration"),
            npu_sim.metrics().overhead_s("migration"));
}

TEST_F(TopIlGovernorTest, RuntimeOverheadIsNegligible) {
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  TopIlGovernor governor(constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 0}));
  governor.reset(sim);
  for (CoreId c = 0; c < 8; ++c) sim.spawn(app_, 1e8, c);
  run(governor, sim, 10.0);
  const double total = sim.metrics().overhead_s("migration") +
                       sim.metrics().overhead_s("dvfs");
  // Paper: <= 1.7% of one core.
  EXPECT_LT(total / 10.0, 0.02);
  EXPECT_GT(total, 0.0);
}

TEST_F(TopIlGovernorTest, FallsBackToCpuOnNpulessPlatform) {
  // Same 4+4 core shape, but no NPU block.
  std::vector<ClusterSpec> clusters;
  for (const auto& c : platform_.clusters()) clusters.push_back(c);
  const PlatformSpec npuless(std::move(clusters), NpuSpec{});

  SimConfig config = quiet();
  SystemSim sim(npuless, CoolingConfig::fan(), config);
  TopIlGovernor governor(
      constant_policy(npuless, {0, 0, 0, 0, 0, 0, 0, 1}));
  governor.reset(sim);
  const Pid pid = sim.spawn(app_, 1e8, 0);
  run(governor, sim, 2.0);
  // The decision still happens (CPU inference), the device stays idle.
  EXPECT_EQ(sim.process(pid).core(), 7u);
  EXPECT_FALSE(sim.npu_active());
  EXPECT_GT(sim.metrics().overhead_s("migration"), 0.0);
}

TEST_F(TopIlGovernorTest, SurvivesExtremeSensorNoise) {
  // TOP-IL never reads the temperature sensor, so garbage readings must
  // not change its decisions (unlike TOP-RL, whose reward uses them).
  SimConfig config = quiet();
  config.sensor.noise_stddev_c = 25.0;
  SystemSim sim(platform_, CoolingConfig::fan(), config);
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}));
  governor.reset(sim);
  const Pid pid = sim.spawn(app_, 1e8, 0);
  run(governor, sim, 2.0);
  EXPECT_EQ(sim.process(pid).core(), 7u);
}

TEST_F(TopIlGovernorTest, EpochsStayOnGridForNonTickMultiplePeriods) {
  // 0.505 s is not a multiple of the 10 ms tick. Rescheduling from the
  // fire time (the old `now + period`) stretches every epoch to 0.51 s;
  // over 10 s that loses a whole epoch. Scheduling from the previous
  // deadline keeps the grid exact, which the attached invariant checker
  // verifies per epoch (period_drift / deadline_missed throw here).
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  validate::InvariantChecker checker;
  sim.attach_monitor(&checker);
  TopIlGovernor::Config config;
  config.migration_period_s = 0.505;
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}), config);
  governor.reset(sim);
  sim.spawn(app_, 1e8, 0);
  run(governor, sim, 10.15);
  // Deadlines at 0.505 k for k = 1..20 all fall within 10.15 s.
  EXPECT_EQ(governor.epochs_started(), 20u);
  EXPECT_EQ(checker.report().epochs_checked, 20u);
  EXPECT_TRUE(checker.report().clean());
  sim.attach_monitor(nullptr);
}

TEST_F(TopIlGovernorTest, SlowNpuDefersEpochInsteadOfSkippingIt) {
  // An NPU batch still in flight at the next deadline used to silently
  // swallow that epoch. Now the epoch is deferred and started as soon as
  // the result lands — and the reported deadline grid stays intact.
  SystemSim sim(platform_, CoolingConfig::fan(), quiet());
  validate::InvariantChecker checker;
  sim.attach_monitor(&checker);
  TopIlGovernor::Config config;
  config.migration_period_s = 0.5;
  config.npu_latency.fixed_s = 0.7;  // pathological: longer than the period
  TopIlGovernor governor(
      constant_policy(platform_, {0, 0, 0, 0, 0, 0, 0, 1}), config);
  governor.reset(sim);
  sim.spawn(app_, 1e8, 0);
  run(governor, sim, 5.05);
  EXPECT_GE(governor.epochs_deferred(), 3u);
  // Sustained overload coalesces missed deadlines into one deferred epoch
  // per batch round trip (~0.7 s), so roughly 5 s / 0.7 s epochs run. The
  // old silent skip only started an epoch at every *other* deadline (5);
  // dropping below 7 here means deferral regressed to skipping.
  EXPECT_GE(governor.epochs_started(), 7u);
  // All 10 deadlines are still reported on the exact 0.5 s grid.
  EXPECT_EQ(checker.report().epochs_checked, 10u);
  EXPECT_TRUE(checker.report().clean());
  sim.attach_monitor(nullptr);
}

TEST_F(TopIlGovernorTest, NameAndValidation) {
  TopIlGovernor governor(constant_policy(platform_, std::vector<float>(8)));
  EXPECT_EQ(governor.name(), "TOP-IL");
  TopIlGovernor::Config bad;
  bad.migration_period_s = 0.0;
  EXPECT_THROW(
      TopIlGovernor(constant_policy(platform_, std::vector<float>(8)), bad),
      InvalidArgument);
}

}  // namespace
}  // namespace topil
